// Catalog of the code-level (CL) lint rules enforced by tools/cgraf_lint.
//
// The rule IDs live here — next to the ML/FL (model_lint.h) and DL
// (input_lint.h) families — so the whole rule namespace is declared in one
// subsystem and the CL009 cross-check ("every declared rule ID appears in a
// test fixture") can enumerate all four families from src/verify alone.
// The analyzer itself is tools/cgraf_lint; it consumes this table for rule
// metadata, `--rules` filtering and suppression validation.
#pragma once

#include <string_view>
#include <vector>

#include "verify/model_lint.h"

namespace cgraf::verify {

struct CodeRuleInfo {
  const char* id;       // stable ID, e.g. "CL003"
  Severity severity;    // default severity of the rule's findings
  const char* summary;  // one-line description for --list-rules / docs
};

// CL001 error  raw std sync primitive (std::mutex, std::lock_guard,
//              std::unique_lock, std::scoped_lock, std::condition_variable,
//              std::atomic_flag, ...) outside src/util/sync.* — all locking
//              goes through the annotated cgraf::Mutex layer
// CL002 error  cgraf::Mutex data member with no CGRAF_GUARDED_BY(member)
//              annotation in its file, or no lock_rank:: registration in
//              its file or the sibling .h/.cpp of the same stem
// CL003 error  floating-point ==/!= against a nonzero literal in the solver
//              and physics kernels (src/milp, src/aging, src/thermal,
//              src/timing, src/verify); use util/float_cmp.h. Comparisons
//              against 0-valued literals and the kInf sentinels are exempt
//              (exact-zero sparsity tests and infinity flags are contracts).
// CL004 error  stdout output (printf, fprintf(stdout, ...), std::cout,
//              puts, putchar) in library code (src/** outside src/obs);
//              route through obs/report. stderr diagnostics are fine.
// CL005 error  dereference of an optional observability pointer (events,
//              tracer, metrics, progress) with no null guard in sight
// CL006 error  locale/UB-prone C parsing: atoi/atol/atoll/atof/strtok;
//              use the strict strtol/strtod wrappers
// CL007 error  stats struct whose operator+= / add() body does not mention
//              every data member (a counter that never aggregates)
// CL008 error  stats struct field never referenced in any JSON-emission
//              site (a counter that never reaches the report)
// CL009 error  rule ID declared in src/verify (ML/FL/DL/CL) that appears in
//              no test file — every rule needs a fixture that fires it
// CL010 error  malformed CGRAF_LINT_ALLOW suppression: unknown rule ID,
//              missing ": reason", or a suppression that matched nothing
// CL011 error  two or more distinct canonical strategy names ("dive",
//              "fix-once", "ilp", "local-search", "portfolio") compared
//              with ==/!= against strings outside src/core/strategy.* —
//              a hand-rolled strategy parser/printer that will miss the
//              next table entry; use parse_strategy()/to_string()
const std::vector<CodeRuleInfo>& code_rules();

// Lookup by ID; nullptr when unknown.
const CodeRuleInfo* find_code_rule(std::string_view id);

}  // namespace cgraf::verify
