#include "verify/model_lint.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <string>

#include "obs/json_writer.h"
#include "util/float_cmp.h"

namespace cgraf::verify {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarn: return "warn";
    case Severity::kInfo: return "info";
  }
  return "?";
}

void LintReport::add(std::string rule, Severity severity, std::string message,
                     int row, int col) {
  switch (severity) {
    case Severity::kError: ++errors; break;
    case Severity::kWarn: ++warnings; break;
    case Severity::kInfo: ++infos; break;
  }
  findings.push_back(
      LintFinding{std::move(rule), severity, std::move(message), row, col,
                  /*file=*/{}, /*line=*/-1});
}

void LintReport::add_at(std::string rule, Severity severity,
                        std::string message, std::string file, int line) {
  switch (severity) {
    case Severity::kError: ++errors; break;
    case Severity::kWarn: ++warnings; break;
    case Severity::kInfo: ++infos; break;
  }
  findings.push_back(LintFinding{std::move(rule), severity,
                                 std::move(message), /*row=*/-1, /*col=*/-1,
                                 std::move(file), line});
}

void LintReport::merge(const LintReport& other) {
  errors += other.errors;
  warnings += other.warnings;
  infos += other.infos;
  findings.insert(findings.end(), other.findings.begin(),
                  other.findings.end());
}

std::string LintReport::to_json() const {
  obs::JsonWriter w;
  w.begin_object()
      .field("errors", errors)
      .field("warnings", warnings)
      .field("infos", infos)
      .key("findings")
      .begin_array();
  for (const LintFinding& f : findings) {
    w.begin_object()
        .field("rule", f.rule)
        .field("severity", to_string(f.severity))
        .field("message", f.message);
    if (f.row >= 0) w.field("row", f.row);
    if (f.col >= 0) w.field("col", f.col);
    if (!f.file.empty()) w.field("file", f.file);
    if (f.line >= 0) w.field("line", f.line);
    w.end_object();
  }
  w.end_array().end_object();
  return w.str();
}

std::string LintReport::to_text() const {
  std::string out;
  for (const LintFinding& f : findings) {
    if (!f.file.empty()) {
      out += f.file;
      if (f.line >= 0) out += ':' + std::to_string(f.line);
      out += ": ";
    }
    out += to_string(f.severity);
    out += ' ';
    out += f.rule;
    out += ": ";
    out += f.message;
    if (f.row >= 0) out += " (row " + std::to_string(f.row) + ")";
    if (f.col >= 0) out += " (col " + std::to_string(f.col) + ")";
    out += '\n';
  }
  return out;
}

namespace {

std::string row_label(const milp::Model& model, int r) {
  const std::string& name = model.constraint(r).name;
  return name.empty() ? "row " + std::to_string(r) : "row '" + name + "'";
}

std::string col_label(const milp::Model& model, int j) {
  const std::string& name = model.var(j).name;
  return name.empty() ? "col " + std::to_string(j) : "col '" + name + "'";
}

}  // namespace

LintReport lint_model(const milp::Model& model, const LintOptions& opts) {
  LintReport rep;
  const auto info = [&](std::string rule, std::string message, int row = -1,
                        int col = -1) {
    if (opts.include_info)
      rep.add(std::move(rule), Severity::kInfo, std::move(message), row, col);
  };

  // --- Column checks: ML001 (bounds), ML002 (objective), ML003 (binary).
  for (int j = 0; j < model.num_vars(); ++j) {
    const milp::Variable& v = model.var(j);
    if (std::isnan(v.lb) || std::isnan(v.ub) || v.lb > v.ub) {
      rep.add("ML001", Severity::kError,
              "empty or non-finite bound window [" + std::to_string(v.lb) +
                  ", " + std::to_string(v.ub) + "] on " +
                  col_label(model, j),
              -1, j);
      continue;
    }
    if (!std::isfinite(v.obj)) {
      rep.add("ML002", Severity::kError,
              "non-finite objective coefficient on " + col_label(model, j),
              -1, j);
    }
    if (v.type == milp::VarType::kBinary) {
      if (std::floor(v.ub + 1e-9) < std::ceil(v.lb - 1e-9)) {
        rep.add("ML003", Severity::kError,
                "binary bound window [" + std::to_string(v.lb) + ", " +
                    std::to_string(v.ub) + "] contains no integer point on " +
                    col_label(model, j),
                -1, j);
      } else if (v.lb < -1e-9 || v.ub > 1.0 + 1e-9) {
        rep.add("ML003", Severity::kWarn,
                "binary variable with bounds outside [0,1] on " +
                    col_label(model, j),
                -1, j);
      }
    }
  }

  // --- Row checks.
  std::vector<int> col_uses(static_cast<std::size_t>(model.num_vars()), 0);
  double max_abs = 0.0;
  double min_abs = milp::kInf;
  // Rows grouped by their exact term vector, for ML007/ML008.
  std::map<std::vector<std::pair<int, double>>, std::vector<int>> by_terms;
  for (int r = 0; r < model.num_constraints(); ++r) {
    const milp::Constraint& c = model.constraint(r);
    if (c.terms.empty()) {
      if (0.0 < c.lb - 1e-12 || 0.0 > c.ub + 1e-12) {
        rep.add("ML005", Severity::kError,
                "constant-infeasible " + row_label(model, r) +
                    ": no terms but bounds exclude 0",
                r);
      } else {
        info("ML004", "vacuous " + row_label(model, r) + " (no terms)", r);
      }
      continue;
    }

    bool finite_coeffs = true;
    for (std::size_t t = 0; t < c.terms.size(); ++t) {
      const auto& [idx, coeff] = c.terms[t];
      if (!std::isfinite(coeff)) {
        rep.add("ML002", Severity::kError,
                "non-finite coefficient in " + row_label(model, r), r, idx);
        finite_coeffs = false;
        continue;
      }
      ++col_uses[static_cast<std::size_t>(idx)];
      max_abs = std::max(max_abs, std::abs(coeff));
      if (coeff != 0.0) min_abs = std::min(min_abs, std::abs(coeff));
      if (t > 0 && c.terms[t - 1].first == idx) {
        rep.add("ML006", Severity::kError,
                "duplicate column in " + row_label(model, r) +
                    " (entries must be merged, not repeated)",
                r, idx);
      }
    }
    by_terms[c.terms].push_back(r);

    // Activity interval of the row under the variable bounds alone.
    if (finite_coeffs) {
      double act_lo = 0.0, act_hi = 0.0;
      for (const auto& [idx, coeff] : c.terms) {
        const milp::Variable& v = model.var(idx);
        if (v.lb > v.ub) { act_lo = -milp::kInf; act_hi = milp::kInf; break; }
        const double a = coeff * (coeff >= 0.0 ? v.lb : v.ub);
        const double b = coeff * (coeff >= 0.0 ? v.ub : v.lb);
        act_lo += a;
        act_hi += b;
      }
      // Only finite bounds scale the tolerance; an infinite one-sided bound
      // must not blow the slack up to infinity (which would disable ML011
      // and make ML012 fire on every one-sided row).
      const double lb_mag = std::isfinite(c.lb) ? std::abs(c.lb) : 0.0;
      const double ub_mag = std::isfinite(c.ub) ? std::abs(c.ub) : 0.0;
      const double slack = 1e-9 * std::max(1.0, lb_mag + ub_mag);
      if (act_lo > c.ub + slack || act_hi < c.lb - slack) {
        rep.add("ML011", Severity::kError,
                row_label(model, r) +
                    " is infeasible against the variable bounds alone "
                    "(activity in [" +
                    std::to_string(act_lo) + ", " + std::to_string(act_hi) +
                    "], bounds [" + std::to_string(c.lb) + ", " +
                    std::to_string(c.ub) + "])",
                r);
      } else if (act_lo >= c.lb - slack && act_hi <= c.ub + slack) {
        info("ML012",
             row_label(model, r) + " can never bind (activity within bounds "
                                   "for every variable assignment)",
             r);
      }
    }
  }

  // ML007/ML008: duplicate and dominated rows.
  for (const auto& [terms, rows] : by_terms) {
    if (rows.size() < 2) continue;
    for (std::size_t i = 1; i < rows.size(); ++i) {
      const milp::Constraint& a = model.constraint(rows[0]);
      const milp::Constraint& b = model.constraint(rows[i]);
      if (a.lb == b.lb && a.ub == b.ub) {
        rep.add("ML007", Severity::kWarn,
                row_label(model, rows[i]) + " duplicates " +
                    row_label(model, rows[0]),
                rows[i]);
      } else if (b.lb <= a.lb && b.ub >= a.ub) {
        info("ML008",
             row_label(model, rows[i]) + " is dominated by the tighter " +
                 row_label(model, rows[0]),
             rows[i]);
      } else if (a.lb <= b.lb && a.ub >= b.ub) {
        info("ML008",
             row_label(model, rows[0]) + " is dominated by the tighter " +
                 row_label(model, rows[i]),
             rows[0]);
      }
    }
  }

  // ML009: columns no row references and the objective ignores.
  for (int j = 0; j < model.num_vars(); ++j) {
    if (col_uses[static_cast<std::size_t>(j)] == 0 &&
        model.var(j).obj == 0.0) {
      info("ML009",
           col_label(model, j) +
               " appears in no constraint and has zero objective",
           -1, j);
    }
  }

  // ML010: conditioning of the coefficient matrix.
  if (min_abs < milp::kInf && max_abs / min_abs > opts.max_coeff_ratio) {
    rep.add("ML010", Severity::kWarn,
            "coefficient magnitudes span " + std::to_string(max_abs) + " / " +
                std::to_string(min_abs) + " > ratio " +
                std::to_string(opts.max_coeff_ratio) +
                "; expect simplex conditioning trouble");
  }
  return rep;
}

LintReport lint_formulation(const milp::Model& model,
                            const FormulationSpec& spec,
                            const LintOptions& opts) {
  (void)opts;
  LintReport rep;
  const int n_ops = static_cast<int>(spec.assign_vars.size());

  // Index the named builder rows.
  std::vector<int> assign_row(static_cast<std::size_t>(n_ops), -1);
  std::vector<int> stress_row(static_cast<std::size_t>(spec.num_pes), -1);
  int path_rows = 0;
  const auto bracketed_index = [](const std::string& name,
                                  const char* prefix) {
    const std::size_t plen = std::string(prefix).size();
    if (name.rfind(prefix, 0) != 0 || name.back() != ']') return -1;
    const std::string digits = name.substr(plen, name.size() - plen - 1);
    char* end = nullptr;
    const long v = std::strtol(digits.c_str(), &end, 10);
    if (end == digits.c_str() || *end != '\0' || v < 0 || v > 1000000000L)
      return -1;
    return static_cast<int>(v);
  };
  for (int r = 0; r < model.num_constraints(); ++r) {
    const std::string& name = model.constraint(r).name;
    if (name.rfind("assign[", 0) == 0) {
      const int op = bracketed_index(name, "assign[");
      if (op >= 0 && op < n_ops) assign_row[static_cast<std::size_t>(op)] = r;
    } else if (name.rfind("stress[", 0) == 0) {
      const int pe = bracketed_index(name, "stress[");
      if (pe >= 0 && pe < spec.num_pes)
        stress_row[static_cast<std::size_t>(pe)] = r;
    } else if (name.rfind("path[", 0) == 0) {
      ++path_rows;
    }
  }

  // FL001/FL002/FL003: one exactly-one partition row per free op.
  for (int op = 0; op < n_ops; ++op) {
    const auto& vars = spec.assign_vars[static_cast<std::size_t>(op)];
    if (vars.empty()) continue;  // frozen op: no variables by design
    for (const int v : vars) {
      if (v < 0 || v >= model.num_vars() ||
          model.var(v).type != milp::VarType::kBinary) {
        rep.add("FL003", Severity::kError,
                "assignment variable of op " + std::to_string(op) +
                    " is not a binary model variable",
                -1, v);
      }
    }
    const int r = assign_row[static_cast<std::size_t>(op)];
    if (r < 0) {
      rep.add("FL001", Severity::kError,
              "op " + std::to_string(op) +
                  " has no exactly-one assignment row");
      continue;
    }
    const milp::Constraint& c = model.constraint(r);
    std::vector<int> expected = vars;
    std::sort(expected.begin(), expected.end());
    std::vector<int> got;
    got.reserve(c.terms.size());
    // Bit-exact on purpose: the builder writes these coefficients and bounds
    // as literal 1.0, so any deviation — even 1 ulp — means a different code
    // path produced the row and FL002 must fire.
    bool unit_coeffs = true;
    for (const auto& [idx, coeff] : c.terms) {
      got.push_back(idx);
      unit_coeffs &= util::exact_eq(coeff, 1.0);
    }
    if (util::exact_ne(c.lb, 1.0) || util::exact_ne(c.ub, 1.0) ||
        !unit_coeffs || got != expected) {
      rep.add("FL002", Severity::kError,
              "assignment row of op " + std::to_string(op) +
                  " is not sum(assign vars) == 1",
              r);
    }
  }

  // FL004: every PE that can receive stress has a stress row covering all of
  // the variables that could place stress on it.
  std::vector<std::vector<int>> vars_on_pe(
      static_cast<std::size_t>(spec.num_pes));
  for (int op = 0; op < n_ops; ++op) {
    const auto& vars = spec.assign_vars[static_cast<std::size_t>(op)];
    const auto& cand = spec.candidates[static_cast<std::size_t>(op)];
    for (std::size_t c = 0; c < vars.size(); ++c) {
      if (cand[c] >= 0 && cand[c] < spec.num_pes)
        vars_on_pe[static_cast<std::size_t>(cand[c])].push_back(vars[c]);
    }
  }
  for (int pe = 0; pe < spec.num_pes; ++pe) {
    auto& expected = vars_on_pe[static_cast<std::size_t>(pe)];
    if (expected.empty()) continue;
    const int r = stress_row[static_cast<std::size_t>(pe)];
    if (r < 0) {
      rep.add("FL004", Severity::kError,
              "PE " + std::to_string(pe) +
                  " can receive stress but has no stress row");
      continue;
    }
    const milp::Constraint& c = model.constraint(r);
    std::vector<int> got;
    got.reserve(c.terms.size());
    for (const auto& [idx, coeff] : c.terms) {
      got.push_back(idx);
      if (coeff < 0.0) {
        rep.add("FL004", Severity::kError,
                "stress row of PE " + std::to_string(pe) +
                    " has a negative stress coefficient",
                r, idx);
      }
    }
    std::sort(expected.begin(), expected.end());
    std::sort(got.begin(), got.end());
    if (!std::includes(got.begin(), got.end(), expected.begin(),
                       expected.end())) {
      rep.add("FL004", Severity::kError,
              "stress row of PE " + std::to_string(pe) +
                  " misses at least one variable that can stress it",
              r);
    }
  }

  // FL005: path budget rows must match the builder's count and never exceed
  // the number of monitored paths (budgets exist only for monitored paths).
  if (path_rows != spec.num_path_rows) {
    rep.add("FL005", Severity::kError,
            "model has " + std::to_string(path_rows) +
                " wirelength-budget rows, builder recorded " +
                std::to_string(spec.num_path_rows));
  }
  if (path_rows > spec.num_monitored_paths) {
    rep.add("FL005", Severity::kError,
            "more wirelength-budget rows (" + std::to_string(path_rows) +
                ") than monitored paths (" +
                std::to_string(spec.num_monitored_paths) + ")");
  }
  return rep;
}

}  // namespace cgraf::verify
