// Compensated (Kahan-Neumaier) summation for the independent certifier.
//
// The solver accumulates row activities with plain doubles; the certifier
// must not inherit its rounding behaviour, otherwise a marginally-infeasible
// solution could pass re-validation by making the same numerical mistakes.
#pragma once

#include <cmath>

namespace cgraf::verify {

class KahanSum {
 public:
  void add(double v) {
    const double t = sum_ + v;
    if (std::abs(sum_) >= std::abs(v)) {
      comp_ += (sum_ - t) + v;
    } else {
      comp_ += (v - t) + sum_;
    }
    sum_ = t;
  }

  double value() const { return sum_ + comp_; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;  // running compensation for lost low-order bits
};

// Compensated dot product of sparse terms against a dense vector.
template <typename Terms, typename Vec>
double kahan_dot(const Terms& terms, const Vec& x) {
  KahanSum acc;
  for (const auto& [idx, coeff] : terms)
    acc.add(coeff * x[static_cast<decltype(x.size())>(idx)]);
  return acc.value();
}

}  // namespace cgraf::verify
