#include "verify/input_lint.h"

#include <cmath>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "cgrra/io.h"
#include "cgrra/operation.h"

namespace cgraf::verify {
namespace {

std::string op_label(int index) { return "op " + std::to_string(index); }

bool bad_delay(double v) { return !std::isfinite(v) || v < 0.0; }

}  // namespace

LintReport lint_design(const Design& design, const InputLintOptions& opts) {
  LintReport rep;
  const Fabric& f = design.fabric;

  // --- DL001/DL002: the fabric itself. Geometry uses 64-bit arithmetic so
  // a hostile rows*cols cannot overflow before the comparison.
  const std::int64_t pes =
      static_cast<std::int64_t>(f.rows()) * static_cast<std::int64_t>(f.cols());
  if (f.rows() <= 0 || f.cols() <= 0 || pes > opts.max_fabric_pes) {
    rep.add("DL001", Severity::kError,
            "fabric geometry " + std::to_string(f.rows()) + "x" +
                std::to_string(f.cols()) + " out of range (limit " +
                std::to_string(opts.max_fabric_pes) + " PEs)");
  }
  const PeDelayModel& d = f.delays();
  bool timing_model_ok = true;
  if (!std::isfinite(f.clock_period_ns()) || f.clock_period_ns() <= 0.0 ||
      bad_delay(f.unit_wire_delay_ns()) || bad_delay(d.alu_delay_ns) ||
      bad_delay(d.dmu_delay_ns) || bad_delay(d.width_offset) ||
      bad_delay(d.width_slope)) {
    rep.add("DL002", Severity::kError,
            "fabric timing model has a non-finite, negative or non-positive"
            " entry (clock " +
                std::to_string(f.clock_period_ns()) + " ns)");
    timing_model_ok = false;
  }

  // --- DL004: contexts.
  if (design.num_contexts <= 0 || design.num_contexts > opts.max_contexts) {
    rep.add("DL004", Severity::kError,
            "context count " + std::to_string(design.num_contexts) +
                " out of range [1, " + std::to_string(opts.max_contexts) + "]");
  }

  // --- DL005/DL006/DL007/DL003: per-op checks (index-based: ids may lie).
  const int n = design.num_ops();
  if (n > opts.max_ops) {
    rep.add("DL005", Severity::kError,
            "op count " + std::to_string(n) + " exceeds limit " +
                std::to_string(opts.max_ops));
  }
  for (int i = 0; i < n; ++i) {
    const Operation& op = design.ops[static_cast<std::size_t>(i)];
    if (op.id != i) {
      rep.add("DL005", Severity::kError,
              "op ids must be dense and 0-based: index " + std::to_string(i) +
                  " carries id " + std::to_string(op.id));
    }
    if (op.context < 0 || op.context >= design.num_contexts) {
      rep.add("DL006", Severity::kError,
              op_label(i) + " has context " + std::to_string(op.context) +
                  " outside [0, " + std::to_string(design.num_contexts) + ")");
    }
    if (op.bitwidth < 1 || op.bitwidth > 64) {
      rep.add("DL007", Severity::kError,
              op_label(i) + " has bitwidth " + std::to_string(op.bitwidth) +
                  " outside [1, 64]");
    } else if (timing_model_ok &&
               op_delay_ns(op, d) > f.clock_period_ns()) {
      // Only meaningful against a sane timing model (DL002 clean).
      rep.add("DL003", Severity::kWarn,
              op_label(i) + " (" + to_string(op.kind) + ", " +
                  std::to_string(op.bitwidth) + " bit) is slower than the " +
                  std::to_string(f.clock_period_ns()) + " ns clock period");
    }
  }

  // --- DL008/DL009/DL010: edges. Context comparisons need in-range
  // endpoints, so dangling edges skip the later checks.
  if (static_cast<std::int64_t>(design.edges.size()) > opts.max_edges) {
    rep.add("DL008", Severity::kError,
            "edge count " + std::to_string(design.edges.size()) +
                " exceeds limit " + std::to_string(opts.max_edges));
  }
  std::set<std::pair<int, int>> seen_edges;
  bool edges_indexable = true;
  for (std::size_t k = 0; k < design.edges.size(); ++k) {
    const Edge& e = design.edges[k];
    if (e.from < 0 || e.from >= n || e.to < 0 || e.to >= n || e.from == e.to) {
      rep.add("DL008", Severity::kError,
              "edge " + std::to_string(k) + " (" + std::to_string(e.from) +
                  " -> " + std::to_string(e.to) +
                  ") is dangling or a self-loop");
      edges_indexable = false;
      continue;
    }
    if (!seen_edges.insert({e.from, e.to}).second) {
      rep.add("DL009", Severity::kWarn,
              "duplicate edge " + std::to_string(e.from) + " -> " +
                  std::to_string(e.to));
    }
    const int cf = design.ops[static_cast<std::size_t>(e.from)].context;
    const int ct = design.ops[static_cast<std::size_t>(e.to)].context;
    if (cf > ct) {
      rep.add("DL010", Severity::kError,
              "edge " + std::to_string(e.from) + " -> " + std::to_string(e.to) +
                  " flows backwards across contexts (" + std::to_string(cf) +
                  " -> " + std::to_string(ct) + ")");
    }
  }

  // --- DL011: same-context (combinational) edges must form a DAG. Kahn's
  // algorithm over the same-context subgraph; needs indexable edges.
  if (edges_indexable && n > 0) {
    std::vector<int> indeg(static_cast<std::size_t>(n), 0);
    std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
    for (const Edge& e : design.edges) {
      if (design.ops[static_cast<std::size_t>(e.from)].context !=
          design.ops[static_cast<std::size_t>(e.to)].context) {
        continue;
      }
      adj[static_cast<std::size_t>(e.from)].push_back(e.to);
      ++indeg[static_cast<std::size_t>(e.to)];
    }
    std::vector<int> queue;
    for (int i = 0; i < n; ++i)
      if (indeg[static_cast<std::size_t>(i)] == 0) queue.push_back(i);
    int seen = 0;
    while (!queue.empty()) {
      const int u = queue.back();
      queue.pop_back();
      ++seen;
      for (const int v : adj[static_cast<std::size_t>(u)])
        if (--indeg[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
    }
    if (seen != n) {
      rep.add("DL011", Severity::kError,
              "combinational cycle: " + std::to_string(n - seen) +
                  " op(s) sit on a same-context dependency cycle");
    }
  }

  return rep;
}

LintReport lint_floorplan(const Design& design, const Floorplan& fp,
                          const InputLintOptions& opts) {
  (void)opts;
  LintReport rep;
  const int n = design.num_ops();
  if (static_cast<int>(fp.op_to_pe.size()) != n) {
    rep.add("DL012", Severity::kError,
            "floorplan maps " + std::to_string(fp.op_to_pe.size()) +
                " op(s) but the design has " + std::to_string(n));
    return rep;  // per-op checks below would index out of bounds
  }
  const int num_pes = design.fabric.num_pes();
  bool pes_in_range = true;
  for (int i = 0; i < n; ++i) {
    const int pe = fp.op_to_pe[static_cast<std::size_t>(i)];
    if (pe < 0 || pe >= num_pes) {
      rep.add("DL013", Severity::kError,
              op_label(i) + " mapped to nonexistent PE " + std::to_string(pe) +
                  " (fabric has " + std::to_string(num_pes) + ")");
      pes_in_range = false;
    }
  }
  if (pes_in_range) {
    std::set<std::pair<int, int>> used;  // (context, pe)
    for (int i = 0; i < n; ++i) {
      const Operation& op = design.ops[static_cast<std::size_t>(i)];
      if (op.context < 0 || op.context >= design.num_contexts) continue;
      const int pe = fp.op_to_pe[static_cast<std::size_t>(i)];
      if (!used.insert({op.context, pe}).second) {
        rep.add("DL014", Severity::kError,
                "context " + std::to_string(op.context) +
                    " maps two ops to PE " + std::to_string(pe) +
                    " (second is " + op_label(i) + ")");
      }
    }
  }
  return rep;
}

LintReport lint_stress_map(const Design& design, const StressMap& stress,
                           const InputLintOptions& opts) {
  (void)opts;
  LintReport rep;
  const std::size_t num_pes =
      static_cast<std::size_t>(design.fabric.num_pes());
  const std::size_t num_ctx = static_cast<std::size_t>(
      design.num_contexts > 0 ? design.num_contexts : 0);
  bool shape_ok = true;
  if (stress.accumulated.size() != num_pes) {
    rep.add("DL015", Severity::kError,
            "accumulated stress map has " +
                std::to_string(stress.accumulated.size()) +
                " entries for a fabric of " + std::to_string(num_pes) +
                " PEs");
    shape_ok = false;
  }
  if (stress.per_context.size() != num_ctx) {
    rep.add("DL015", Severity::kError,
            "per-context stress map has " +
                std::to_string(stress.per_context.size()) +
                " layers for " + std::to_string(num_ctx) + " contexts");
    shape_ok = false;
  } else {
    for (std::size_t c = 0; c < stress.per_context.size(); ++c) {
      if (stress.per_context[c].size() != num_pes) {
        rep.add("DL015", Severity::kError,
                "per-context stress layer " + std::to_string(c) + " has " +
                    std::to_string(stress.per_context[c].size()) +
                    " entries for a fabric of " + std::to_string(num_pes) +
                    " PEs");
        shape_ok = false;
      }
    }
  }
  if (shape_ok) {
    auto check_entries = [&](const std::vector<double>& v,
                             const std::string& where) {
      for (std::size_t k = 0; k < v.size(); ++k) {
        if (std::isnan(v[k]) || v[k] < 0.0) {
          rep.add("DL015", Severity::kError,
                  where + " stress of PE " + std::to_string(k) + " is " +
                      std::to_string(v[k]) + " (NaN or negative)");
        }
      }
    };
    check_entries(stress.accumulated, "accumulated");
    for (std::size_t c = 0; c < stress.per_context.size(); ++c)
      check_entries(stress.per_context[c],
                    "context " + std::to_string(c));
  }
  return rep;
}

LintReport lint_inputs(const Design& design, const Floorplan* fp,
                       const StressMap* stress,
                       const InputLintOptions& opts) {
  LintReport rep = lint_design(design, opts);
  if (rep.errors == 0 && fp != nullptr)
    rep.merge(lint_floorplan(design, *fp, opts));
  if (rep.errors == 0 && stress != nullptr)
    rep.merge(lint_stress_map(design, *stress, opts));
  if (!opts.include_info) {
    // DL rules currently emit no info findings; filter anyway so the knob
    // behaves like LintOptions::include_info.
    std::vector<LintFinding> kept;
    for (LintFinding& f : rep.findings)
      if (f.severity != Severity::kInfo) kept.push_back(std::move(f));
    rep.findings = std::move(kept);
    rep.infos = 0;
  }
  return rep;
}

namespace {

// Shared back half of the accept_* helpers: reject on any lint error and
// surface the first finding through *error.
bool lint_accept(const LintReport& rep, std::string* error) {
  if (rep.clean()) return true;
  if (error != nullptr) {
    for (const LintFinding& f : rep.findings) {
      if (f.severity == Severity::kError) {
        *error = "input lint: " + f.rule + ": " + f.message;
        break;
      }
    }
  }
  return false;
}

}  // namespace

std::optional<Design> accept_design_text(const std::string& text,
                                         std::string* error,
                                         LintReport* report,
                                         const InputLintOptions& opts) {
  std::optional<Design> design = design_from_text(text, error);
  if (!design) return std::nullopt;
  LintReport rep = lint_design(*design, opts);
  const bool ok = lint_accept(rep, error);
  if (report != nullptr) *report = std::move(rep);
  if (!ok) return std::nullopt;
  return design;
}

std::optional<Floorplan> accept_floorplan_text(const Design& design,
                                               const std::string& text,
                                               std::string* error,
                                               LintReport* report,
                                               const InputLintOptions& opts) {
  std::optional<Floorplan> fp = floorplan_from_text(text, error);
  if (!fp) return std::nullopt;
  // The floorplan rules only make sense against a clean design; a dirty one
  // is itself an acceptance failure here.
  LintReport rep = lint_inputs(design, &*fp, nullptr, opts);
  const bool ok = lint_accept(rep, error);
  if (report != nullptr) *report = std::move(rep);
  if (!ok) return std::nullopt;
  return fp;
}

}  // namespace cgraf::verify
