// Independent re-validation of solver output (the second half of the
// correctness wall; verify/model_lint.h is the first).
//
// certify_solution re-checks an LP/MILP solution vector against the model
// with compensated (Kahan) arithmetic: per-row feasibility within tolerance,
// variable bounds, integrality, and an objective recomputation. It shares no
// code with the simplex engine on purpose.
//
// certify_floorplan validates floorplan legality straight from the cgrra
// data model — without going through model_builder — so a model-construction
// bug cannot certify its own output: one op per PE per context, accumulated
// stress within ST_target, frozen critical-path ops unmoved (relative to
// whatever reference the caller passes, i.e. the rotated base in Rotate
// mode), and every monitored path within its wirelength budget.
#pragma once

#include <string>
#include <vector>

#include "cgrra/design.h"
#include "cgrra/floorplan.h"
#include "milp/model.h"
#include "timing/sta.h"

namespace cgraf::verify {

struct CertifyOptions {
  double tol_feas = 1e-6;      // row activity / variable bound tolerance
  double tol_int = 1e-6;       // integrality tolerance
  double tol_obj = 1e-6;       // objective mismatch tolerance (abs + rel)
  double tol_stress = 1e-9;    // accumulated-stress bound tolerance
  double tol_delay_ns = 1e-9;  // wirelength-budget tolerance, in ns
  int max_issues = 64;         // stop collecting after this many failures
};

struct CertifyIssue {
  std::string check;  // stable ID, e.g. "row-feasibility"
  std::string message;
};

struct Certificate {
  bool ok = true;
  std::vector<CertifyIssue> issues;
  // Worst violations seen (0 when the corresponding check passed).
  double max_row_violation = 0.0;
  double max_bound_violation = 0.0;
  double max_int_violation = 0.0;
  double objective = 0.0;  // recomputed with compensated arithmetic

  void fail(const CertifyOptions& opts, std::string check,
            std::string message);
  std::string summary() const;  // first issue, or "certified"
  std::string to_json() const;
};

// MILP-level: is `x` a (tolerance-)feasible point of `model`? Integrality is
// checked for binary/integer columns unless `relaxed` is set. When
// `claimed_obj` is non-null the recomputed objective must match it.
Certificate certify_solution(const milp::Model& model,
                             const std::vector<double>& x,
                             const CertifyOptions& opts = {},
                             bool relaxed = false,
                             const double* claimed_obj = nullptr);

// What a legal floorplan must satisfy, stated in cgrra terms only.
struct FloorplanSpec {
  const Design* design = nullptr;
  // Frozen ops must sit at reference->pe_of(op). Pass the rotated base when
  // certifying a Rotate-mode result. Null (or empty `frozen`) skips the
  // check.
  const Floorplan* reference = nullptr;
  std::vector<char> frozen;  // per op; empty = nothing frozen
  // Per-PE accumulated stress bound; negative disables the check.
  double st_target = -1.0;
  // Monitored paths and the CPD their wire budgets are derived from
  // (Eq. (5): wirelength <= (cpd - pe_delay) / unit_wire_delay). Null
  // disables the check.
  const std::vector<timing::TimingPath>* monitored = nullptr;
  double cpd_ns = 0.0;
};

Certificate certify_floorplan(const FloorplanSpec& spec, const Floorplan& fp,
                              const CertifyOptions& opts = {});

// Acceptance-path wiring knob: pipeline stages re-validate what they accept
// when `enabled` is set, and reject results that fail certification.
struct VerifyOptions {
  bool enabled = false;
  CertifyOptions tol;
};

}  // namespace cgraf::verify
