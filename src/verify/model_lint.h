// Static analysis of milp::Model instances before they reach the solver.
//
// The floorplanner's correctness story has two halves: the model we hand to
// the solver must encode formulation (3) faithfully, and the solution the
// solver returns must actually satisfy it (verify/certify.h). This header
// covers the first half with structural and numerical lint rules; findings
// carry a stable rule ID so tests and CI can match on them.
#pragma once

#include <string>
#include <vector>

#include "milp/model.h"

namespace cgraf::verify {

enum class Severity { kError, kWarn, kInfo };

const char* to_string(Severity s);

struct LintFinding {
  std::string rule;  // stable ID, e.g. "ML005"
  Severity severity = Severity::kInfo;
  std::string message;
  int row = -1;  // constraint index; -1 when not row-scoped
  int col = -1;  // variable index; -1 when not column-scoped
  // Source location, used by the code-level rules (CL*, tools/cgraf_lint)
  // where findings point at files rather than model rows. Empty/-1 for the
  // model/input rule families.
  std::string file;
  int line = -1;
};

struct LintOptions {
  // ML010: warn when max|a_ij| / min|a_ij| over all nonzero constraint
  // coefficients exceeds this ratio (simplex conditioning risk).
  double max_coeff_ratio = 1e8;
  // Info-severity rules are numerous on big models; the debug-assert wiring
  // in model_builder only cares about errors either way.
  bool include_info = true;
};

struct LintReport {
  std::vector<LintFinding> findings;
  int errors = 0;
  int warnings = 0;
  int infos = 0;

  bool clean() const { return errors == 0; }
  void add(std::string rule, Severity severity, std::string message,
           int row = -1, int col = -1);
  // Source-located variant used by the code-level (CL) rules.
  void add_at(std::string rule, Severity severity, std::string message,
              std::string file, int line);
  void merge(const LintReport& other);
  // {"errors":N,"warnings":N,"infos":N,"findings":[{...},...]}
  std::string to_json() const;
  // One "severity RULE message (row R / col C)" line per finding.
  std::string to_text() const;
};

// General rule catalog (model-agnostic):
//   ML001 error  empty or non-finite variable bound window (lb > ub, NaN)
//   ML002 error  non-finite constraint or objective coefficient
//   ML003 warn   binary variable with bounds outside [0,1];
//         error  when the bound window contains no integer point
//   ML004 info   constraint with no terms (vacuous)
//   ML005 error  constant-infeasible row: no terms and 0 outside [lb,ub]
//   ML006 error  duplicate column within one constraint row
//   ML007 warn   duplicate row (identical terms, coefficients and bounds)
//   ML008 info   dominated row (identical terms, strictly looser bounds)
//   ML009 info   column that appears in no constraint and has zero
//                objective (free to drift; usually a modelling leftover)
//   ML010 warn   coefficient magnitude ratio exceeds max_coeff_ratio
//   ML011 error  row infeasible against the variable bounds alone
//   ML012 info   row redundant against the variable bounds alone
LintReport lint_model(const milp::Model& model, const LintOptions& opts = {});

// Expected shape of one formulation-(3) re-mapping model. The model builder
// fills this from its own bookkeeping (core/model_builder.h names the rows
// "assign[op]" / "excl[ctx,pe]" / "stress[pe]" / "path[k]"), so the linter
// can check the paper-specific structure without re-deriving it.
struct FormulationSpec {
  int num_pes = 0;
  // Per op: the model columns of its assignment variables (empty = frozen).
  std::vector<std::vector<int>> assign_vars;
  // Per op: the candidate PE behind each assignment variable, aligned with
  // assign_vars.
  std::vector<std::vector<int>> candidates;
  int num_path_rows = 0;        // wirelength-budget rows actually emitted
  int num_monitored_paths = 0;  // paths eligible for a budget row
};

// Formulation-(3) rule catalog (requires builder row names):
//   FL001 error  free op without exactly one "assign[op]" partition row
//   FL002 error  assignment row with wrong variables, coefficients or rhs
//   FL003 error  assignment variable that is not binary
//   FL004 error  candidate PE whose stress row is missing, or misses one of
//                the variables that can place stress on it
//   FL005 error  wirelength-budget row count disagrees with the builder's
//                bookkeeping or exceeds the monitored-path count
LintReport lint_formulation(const milp::Model& model,
                            const FormulationSpec& spec,
                            const LintOptions& opts = {});

}  // namespace cgraf::verify
