#include "verify/code_rules.h"

namespace cgraf::verify {

const std::vector<CodeRuleInfo>& code_rules() {
  static const std::vector<CodeRuleInfo> kRules = {
      {"CL001", Severity::kError,
       "raw std sync primitive outside src/util/sync.*; use cgraf::Mutex / "
       "MutexLock / CondVar"},
      {"CL002", Severity::kError,
       "Mutex member without CGRAF_GUARDED_BY annotation or lock_rank "
       "registration"},
      {"CL003", Severity::kError,
       "floating-point ==/!= against a nonzero literal in a solver/physics "
       "kernel; use util/float_cmp.h"},
      {"CL004", Severity::kError,
       "stdout output in library code; route through obs/report"},
      {"CL005", Severity::kError,
       "unguarded dereference of an optional events/tracer/metrics/progress "
       "pointer"},
      {"CL006", Severity::kError,
       "non-strict C parsing (atoi/atol/atoll/atof/strtok); use strtol/"
       "strtod with range checks"},
      {"CL007", Severity::kError,
       "stats struct field missing from its operator+= / add() body"},
      {"CL008", Severity::kError,
       "stats struct field missing from every JSON-emission site"},
      {"CL009", Severity::kError,
       "declared rule ID (ML/FL/DL/CL) appears in no test file"},
      {"CL010", Severity::kError,
       "malformed or unused CGRAF_LINT_ALLOW suppression"},
      {"CL011", Severity::kError,
       "ad-hoc strategy-name string comparisons outside core/strategy.*"},
  };
  return kRules;
}

const CodeRuleInfo* find_code_rule(std::string_view id) {
  for (const CodeRuleInfo& r : code_rules()) {
    if (id == r.id) return &r;
  }
  return nullptr;
}

}  // namespace cgraf::verify
