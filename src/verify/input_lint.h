// Static analysis of the cgrra data model itself — the layer *below*
// verify/model_lint.h. The ML/FL rules assume a sane Design/Floorplan/
// StressMap; these DL ("data lint") rules are what establishes that sanity,
// so untrusted bytes arriving at design_from_text / floorplan_from_text (or
// a future floorplanning service socket) are rejected with a stable rule ID
// before any formulation-(3) model is built.
//
// Findings reuse the LintReport machinery (severity, stable IDs, text/JSON
// reports) from model_lint.h; indices live in the message text because the
// row/col fields are model-scoped.
#pragma once

#include <optional>
#include <string>

#include "cgrra/design.h"
#include "cgrra/floorplan.h"
#include "cgrra/stress.h"
#include "verify/model_lint.h"

namespace cgraf::verify {

struct InputLintOptions {
  // Resource ceilings for a single accepted input. They mirror the parser
  // caps in cgrra/io.cpp: the parser enforces them against the wire format,
  // the linter re-checks them on the in-memory structs so programmatically
  // built (or deserialized-elsewhere) inputs get the same wall.
  int max_fabric_pes = 64 * 1024;
  int max_contexts = 4096;
  int max_ops = 1000000;
  int max_edges = 4000000;
  bool include_info = true;
};

// Design rule catalog:
//   DL001 error  fabric geometry out of range (non-positive rows/cols, or
//                rows*cols beyond max_fabric_pes)
//   DL002 error  fabric timing model broken: non-finite or non-positive
//                clock period, negative/non-finite wire or unit delays
//   DL003 warn   op whose PE-internal delay exceeds the clock period
//                (unschedulable in any context)
//   DL004 error  context count out of range (non-positive, or beyond
//                max_contexts)
//   DL005 error  op ids not dense/0-based, or op count beyond max_ops
//   DL006 error  op context outside [0, num_contexts)
//   DL007 error  op bitwidth outside [1, 64]
//   DL008 error  dangling or self-looping DFG edge, or edge count beyond
//                max_edges
//   DL009 warn   duplicate DFG edge (same producer -> consumer twice)
//   DL010 error  cross-context edge flowing backwards in time
//   DL011 error  combinational cycle among same-context edges
LintReport lint_design(const Design& design, const InputLintOptions& opts = {});

// Floorplan rule catalog (against its design):
//   DL012 error  floorplan op count disagrees with the design
//   DL013 error  op mapped to a nonexistent PE (negative or off-fabric)
//   DL014 error  two ops of one context mapped to the same PE
// DL013/DL014 are skipped when DL012 fires (indices would be meaningless),
// and both assume the design half is clean enough to index (run lint_design
// first; lint_inputs below does).
LintReport lint_floorplan(const Design& design, const Floorplan& fp,
                          const InputLintOptions& opts = {});

// Stress-map rule catalog (against its design):
//   DL015 error  accumulated / per-context shape disagrees with the fabric
//                and context count, or an entry is NaN or negative
LintReport lint_stress_map(const Design& design, const StressMap& stress,
                           const InputLintOptions& opts = {});

// One-call boundary check: design rules always; floorplan rules when `fp`
// is non-null and the design rules found no error; stress rules likewise.
// The short-circuiting keeps the dependent passes from indexing a design
// that is already known to be garbage.
LintReport lint_inputs(const Design& design, const Floorplan* fp = nullptr,
                       const StressMap* stress = nullptr,
                       const InputLintOptions& opts = {});

// Parse + DL-lint acceptance in one step — the input-boundary entry points
// the CLI (and any future service front end) load artifacts through.
// Returns nullopt when the parse fails or the lint finds an error; *error
// then carries the positional parse message or the first finding ("input
// lint: DLxxx ..."). The full report lands in *report when non-null.
std::optional<Design> accept_design_text(const std::string& text,
                                         std::string* error,
                                         LintReport* report = nullptr,
                                         const InputLintOptions& opts = {});
std::optional<Floorplan> accept_floorplan_text(const Design& design,
                                               const std::string& text,
                                               std::string* error,
                                               LintReport* report = nullptr,
                                               const InputLintOptions& opts = {});

}  // namespace cgraf::verify
