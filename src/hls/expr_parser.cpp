#include "hls/expr_parser.h"

#include <cctype>
#include <optional>

namespace cgraf::hls {
namespace {

// Values during parsing: either a DFG node (>= 0) or a primary input (-1).
constexpr int kPrimaryInput = -1;

// Adversarial-input ceilings: expr/term/atom recurse on '(' and call
// arguments, so a fuzzer's "((((..." would otherwise overflow the stack,
// and a multi-megabyte "kernel" is never legitimate at expression
// granularity.
constexpr int kMaxExprDepth = 200;
constexpr std::size_t kMaxSourceBytes = 1u * 1024u * 1024u;

class Parser {
 public:
  explicit Parser(const std::string& src) : src_(src) {}

  ParseResult run() {
    if (src_.size() > kMaxSourceBytes) {
      fail("kernel source exceeds " + std::to_string(kMaxSourceBytes) +
           " bytes");
      result_.ok = false;
      return std::move(result_);
    }
    while (!at_end()) {
      skip_ws();
      if (at_end()) break;
      if (!statement()) {
        result_.ok = false;
        return std::move(result_);
      }
      skip_ws();
      if (!at_end()) {
        if (!consume(';')) {
          fail("expected ';' between statements");
          return std::move(result_);
        }
      }
    }
    result_.ok = true;
    return std::move(result_);
  }

 private:
  bool statement() {
    skip_ws();
    if (peek() == '@') {
      ++pos_;
      const std::string word = identifier();
      if (word != "width") return fail("unknown directive '@" + word + "'");
      skip_ws();
      const std::optional<int> w = integer();
      if (!w || *w <= 0 || *w > 64) return fail("@width expects 1..64");
      width_ = *w;
      return true;
    }
    const std::string name = identifier();
    if (name.empty()) return fail("expected identifier");
    skip_ws();
    if (!consume('=')) return fail("expected '=' after '" + name + "'");
    const std::optional<int> value = expr();
    if (!value) return false;
    if (*value != kPrimaryInput) result_.symbols[name] = *value;
    return true;
  }

  std::optional<int> expr() {
    if (depth_ >= kMaxExprDepth) {
      fail("expression nesting too deep");
      return std::nullopt;
    }
    ++depth_;
    std::optional<int> result = expr_inner();
    --depth_;
    return result;
  }

  std::optional<int> expr_inner() {
    std::optional<int> lhs = term();
    if (!lhs) return std::nullopt;
    for (;;) {
      skip_ws();
      const char c = peek();
      OpKind kind;
      if (c == '+') kind = OpKind::kAdd;
      else if (c == '-') kind = OpKind::kSub;
      else if (c == '|') kind = OpKind::kOr;
      else if (c == '^') kind = OpKind::kXor;
      else return lhs;
      ++pos_;
      const std::optional<int> rhs = term();
      if (!rhs) return std::nullopt;
      lhs = make_op(kind, {*lhs, *rhs});
    }
  }

  std::optional<int> term() {
    std::optional<int> lhs = atom();
    if (!lhs) return std::nullopt;
    for (;;) {
      skip_ws();
      OpKind kind;
      if (peek() == '*') { kind = OpKind::kMul; ++pos_; }
      else if (peek() == '&') { kind = OpKind::kAnd; ++pos_; }
      else if (peek() == '<' && peek(1) == '<') { kind = OpKind::kShift; pos_ += 2; }
      else if (peek() == '>' && peek(1) == '>') { kind = OpKind::kShift; pos_ += 2; }
      else return lhs;
      const std::optional<int> rhs = atom();
      if (!rhs) return std::nullopt;
      lhs = make_op(kind, {*lhs, *rhs});
    }
  }

  std::optional<int> atom() {
    skip_ws();
    if (consume('(')) {
      const std::optional<int> inner = expr();
      if (!inner) return std::nullopt;
      skip_ws();
      if (!consume(')')) { fail("expected ')'"); return std::nullopt; }
      return inner;
    }
    const std::string name = identifier();
    if (name.empty()) {
      fail("expected identifier or '('");
      return std::nullopt;
    }
    skip_ws();
    if (peek() == '(') {
      OpKind kind;
      if (name == "mux") kind = OpKind::kMux;
      else if (name == "shuffle") kind = OpKind::kShuffle;
      else if (name == "extract") kind = OpKind::kExtract;
      else if (name == "merge") kind = OpKind::kMerge;
      else if (name == "cmp") kind = OpKind::kCmp;
      else { fail("unknown function '" + name + "'"); return std::nullopt; }
      ++pos_;  // '('
      std::vector<int> args;
      for (;;) {
        const std::optional<int> a = expr();
        if (!a) return std::nullopt;
        args.push_back(*a);
        skip_ws();
        if (consume(',')) continue;
        if (consume(')')) break;
        fail("expected ',' or ')' in call");
        return std::nullopt;
      }
      return make_op(kind, args);
    }
    const auto it = result_.symbols.find(name);
    return it != result_.symbols.end() ? it->second : kPrimaryInput;
  }

  int make_op(OpKind kind, const std::vector<int>& args) {
    const int node = result_.dfg.add_node(kind, width_, "");
    for (const int a : args) {
      if (a != kPrimaryInput) result_.dfg.add_edge(a, node);
    }
    return node;
  }

  // --- Lexing helpers -----------------------------------------------------
  bool at_end() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!at_end()) {
      if (std::isspace(static_cast<unsigned char>(src_[pos_]))) {
        ++pos_;
      } else if (peek() == '#') {  // comment to end of line
        while (!at_end() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }
  std::string identifier() {
    skip_ws();
    std::string out;
    while (!at_end()) {
      const char c = src_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        out += c;
        ++pos_;
      } else {
        break;
      }
    }
    return out;
  }
  std::optional<int> integer() {
    skip_ws();
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return std::nullopt;
    int v = 0;
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      // Saturate instead of overflowing (UB): every consumer range-checks
      // anyway, so a 100-digit literal just reads as "absurdly large".
      if (v < (1 << 24)) v = v * 10 + (src_[pos_] - '0');
      ++pos_;
    }
    return v;
  }
  bool fail(std::string message) {
    result_.error = message + " (at offset " + std::to_string(pos_) + ")";
    return false;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int width_ = 32;
  int depth_ = 0;
  ParseResult result_;
};

}  // namespace

ParseResult parse_kernel(const std::string& source) {
  return Parser(source).run();
}

}  // namespace cgraf::hls
