// A tiny ANSI-C-expression-style DSL for describing kernels (the paper's
// flow starts from behavioral C; this parser provides the same entry point
// at expression granularity).
//
// Grammar (statements separated by ';'):
//   stmt    := ident '=' expr        -- define a value
//            | '@width' integer      -- set bitwidth for subsequent ops
//   expr    := term  (('+'|'-'|'|'|'^') term)*
//   term    := atom  (('*'|'&'|'<<'|'>>') atom)*
//   atom    := ident | call | '(' expr ')'
//   call    := func '(' expr (',' expr)* ')'
//   func    := 'mux' | 'shuffle' | 'extract' | 'merge' | 'cmp'
//
// Identifiers that were never assigned are primary inputs. Each operator
// becomes one DFG node; 'mux'/'shuffle'/'extract'/'merge' map to DMU ops.
//
// Example:
//   "@width 16; acc = a*c0 + b*c1; out = shuffle(acc, acc >> 2);"
//
// The parser is safe on adversarial bytes: expression nesting is capped
// (no stack overflow on "(((("), integer literals saturate instead of
// overflowing, and sources beyond 1 MiB are rejected outright.
#pragma once

#include <map>
#include <string>

#include "hls/dfg.h"

namespace cgraf::hls {

struct ParseResult {
  bool ok = false;
  std::string error;           // set when !ok, with position info
  Dfg dfg;
  // Named values (assignment targets) -> DFG node. Names bound to a primary
  // input alias (e.g. "x = y" with y never assigned) are absent.
  std::map<std::string, int> symbols;
};

ParseResult parse_kernel(const std::string& source);

}  // namespace cgraf::hls
