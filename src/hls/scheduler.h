// Latency-constrained, chaining-aware list scheduler.
//
// Divides a DFG into N contexts (one context executes per clock cycle,
// paper Fig. 1). Dependent operations may be *chained* combinationally
// inside one context as long as the accumulated PE delay leaves enough of
// the clock period for wires; otherwise the consumer moves to a later
// context and the value crosses a context register.
#pragma once

#include <string>
#include <vector>

#include "cgrra/design.h"
#include "hls/dfg.h"

namespace cgraf::hls {

struct ScheduleOptions {
  int num_contexts = 4;          // the design's latency in cycles
  int max_ops_per_context = 64;  // fabric PE count (one op per PE per cycle)
  double clock_period_ns = 5.0;
  PeDelayModel delays{};
  // Fraction of the clock period that chained PE delays may consume; the
  // remainder is headroom for wire delay after placement.
  double chain_budget_frac = 0.70;
};

struct ScheduleResult {
  bool ok = false;
  std::string error;
  std::vector<int> context_of;  // per DFG node
  int contexts_used = 0;
};

ScheduleResult list_schedule(const Dfg& dfg, const ScheduleOptions& opts);

// Smallest context count for which list_schedule succeeds with the given
// resource/chaining options (binary search over num_contexts).
int min_contexts(const Dfg& dfg, ScheduleOptions opts, int upper_limit = 256);

// Assembles the mapped design from a DFG and its schedule.
Design build_design(const Dfg& dfg, const ScheduleResult& schedule,
                    const Fabric& fabric, int num_contexts);

}  // namespace cgraf::hls
