#include "hls/scheduler.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/check.h"

namespace cgraf::hls {
namespace {

double node_delay(const Dfg& dfg, int u, const PeDelayModel& delays) {
  const DfgNode& n = dfg.node(u);
  Operation op;
  op.kind = n.kind;
  op.bitwidth = n.bitwidth;
  return op_delay_ns(op, delays);
}

}  // namespace

ScheduleResult list_schedule(const Dfg& dfg, const ScheduleOptions& opts) {
  obs::Span span("hls.schedule");
  span.arg("ops", dfg.num_nodes()).arg("contexts", opts.num_contexts);
  ScheduleResult res;
  if (opts.num_contexts <= 0 || opts.max_ops_per_context <= 0) {
    res.error = "invalid schedule options";
    return res;
  }
  if (!dfg.is_dag()) {
    res.error = "DFG has a cycle";
    return res;
  }
  const int n = dfg.num_nodes();
  const double budget = opts.chain_budget_frac * opts.clock_period_ns;

  // Priority: the longest downstream PE-delay chain (critical ops first).
  std::vector<double> downstream(static_cast<size_t>(n), 0.0);
  const std::vector<int> topo = dfg.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const int u = *it;
    double best = 0.0;
    for (const int v : dfg.fanout(u))
      best = std::max(best, downstream[static_cast<size_t>(v)]);
    downstream[static_cast<size_t>(u)] = best + node_delay(dfg, u, opts.delays);
  }

  res.context_of.assign(static_cast<size_t>(n), -1);
  std::vector<double> chain(static_cast<size_t>(n), 0.0);  // same-ctx PE-delay
  std::vector<int> unscheduled_preds(static_cast<size_t>(n), 0);
  for (int u = 0; u < n; ++u)
    unscheduled_preds[static_cast<size_t>(u)] =
        static_cast<int>(dfg.fanin(u).size());

  int scheduled = 0;
  for (int c = 0; c < opts.num_contexts && scheduled < n; ++c) {
    int used = 0;
    for (;;) {
      if (used >= opts.max_ops_per_context) break;
      // Find the highest-priority schedulable node for context c.
      int best = -1;
      for (int u = 0; u < n; ++u) {
        if (res.context_of[static_cast<size_t>(u)] >= 0) continue;
        if (unscheduled_preds[static_cast<size_t>(u)] > 0) continue;
        // Chaining feasibility: preds already in context c extend the chain.
        double chain_in = 0.0;
        bool feasible = true;
        for (const int p : dfg.fanin(u)) {
          if (res.context_of[static_cast<size_t>(p)] == c)
            chain_in = std::max(chain_in, chain[static_cast<size_t>(p)]);
        }
        const double my_delay = node_delay(dfg, u, opts.delays);
        if (chain_in + my_delay > budget) feasible = false;
        if (my_delay > budget && chain_in == 0.0)
          feasible = true;  // a single op must fit somewhere; wires get less
        if (!feasible) continue;
        if (best < 0 || downstream[static_cast<size_t>(u)] >
                            downstream[static_cast<size_t>(best)])
          best = u;
      }
      if (best < 0) break;
      const double my_delay = node_delay(dfg, best, opts.delays);
      double chain_in = 0.0;
      for (const int p : dfg.fanin(best)) {
        if (res.context_of[static_cast<size_t>(p)] == c)
          chain_in = std::max(chain_in, chain[static_cast<size_t>(p)]);
      }
      res.context_of[static_cast<size_t>(best)] = c;
      chain[static_cast<size_t>(best)] = chain_in + my_delay;
      ++used;
      ++scheduled;
      res.contexts_used = std::max(res.contexts_used, c + 1);
      for (const int v : dfg.fanout(best))
        --unscheduled_preds[static_cast<size_t>(v)];
    }
  }

  if (scheduled < n) {
    res.error = "design does not fit in " +
                std::to_string(opts.num_contexts) + " contexts of " +
                std::to_string(opts.max_ops_per_context) + " PEs";
    return res;
  }
  res.ok = true;
  span.arg("contexts_used", res.contexts_used);
  return res;
}

int min_contexts(const Dfg& dfg, ScheduleOptions opts, int upper_limit) {
  int lo = std::max(1, dfg.num_nodes() > 0 ? 1 : 0);
  int hi = upper_limit;
  opts.num_contexts = hi;
  if (!list_schedule(dfg, opts).ok) return -1;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    opts.num_contexts = mid;
    if (list_schedule(dfg, opts).ok) hi = mid;
    else lo = mid + 1;
  }
  return lo;
}

Design build_design(const Dfg& dfg, const ScheduleResult& schedule,
                    const Fabric& fabric, int num_contexts) {
  CGRAF_ASSERT(schedule.ok);
  CGRAF_ASSERT(schedule.contexts_used <= num_contexts);
  Design d{fabric, num_contexts, {}, {}};
  d.ops.reserve(static_cast<size_t>(dfg.num_nodes()));
  for (int u = 0; u < dfg.num_nodes(); ++u) {
    const DfgNode& n = dfg.node(u);
    Operation op;
    op.id = u;
    op.kind = n.kind;
    op.bitwidth = n.bitwidth;
    op.context = schedule.context_of[static_cast<size_t>(u)];
    op.name = n.name;
    d.ops.push_back(std::move(op));
  }
  for (const auto& [from, to] : dfg.edges()) d.edges.push_back(Edge{from, to});
  return d;
}

}  // namespace cgraf::hls
