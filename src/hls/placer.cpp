#include "hls/placer.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "util/check.h"
#include "util/rng.h"

namespace cgraf::hls {
namespace {

// Placement state of one context during annealing.
struct ContextState {
  const Design* design;
  const std::vector<int>* ops;             // ops of this context
  std::vector<std::pair<int, int>> comb;   // same-context edges (local idx)
  std::vector<std::pair<int, Point>> cross;  // (local idx, fixed other end)
  std::vector<double> delay;               // PE delay per local op
  std::vector<std::vector<int>> fanout;    // local comb adjacency
  std::vector<int> topo;                   // local topological order

  std::vector<Point> pos;                  // current position per local op
  std::vector<int> occupant;               // per PE: local op or -1
};

double context_cpd(const ContextState& s, const Fabric& fabric) {
  std::vector<double> arrival(s.pos.size(), 0.0);
  double cpd = 0.0;
  for (const int u : s.topo) {
    arrival[static_cast<size_t>(u)] += s.delay[static_cast<size_t>(u)];
    cpd = std::max(cpd, arrival[static_cast<size_t>(u)]);
    for (const int v : s.fanout[static_cast<size_t>(u)]) {
      const double t = arrival[static_cast<size_t>(u)] +
                       fabric.wire_delay_ns(s.pos[static_cast<size_t>(u)],
                                            s.pos[static_cast<size_t>(v)]);
      arrival[static_cast<size_t>(v)] =
          std::max(arrival[static_cast<size_t>(v)], t);
    }
  }
  return cpd;
}

double cost(const ContextState& s, const Fabric& fabric,
            const PlacerOptions& opts) {
  double wire = 0.0;
  for (const auto& [a, b] : s.comb)
    wire += manhattan(s.pos[static_cast<size_t>(a)],
                      s.pos[static_cast<size_t>(b)]);
  double cross = 0.0;
  for (const auto& [a, p] : s.cross)
    cross += manhattan(s.pos[static_cast<size_t>(a)], p);
  Rect box;
  for (const Point p : s.pos) box.expand(p);
  const double cpd = context_cpd(s, fabric);
  const double violation = std::max(0.0, cpd - fabric.clock_period_ns());
  return opts.w_wirelength * wire + opts.w_cross * cross +
         opts.w_bbox * static_cast<double>(box.area()) +
         opts.w_anchor * (box.x0 + box.y0 + box.x1 + box.y1) +
         opts.timing_penalty * violation;
}

}  // namespace

Floorplan place_baseline(const Design& design, const PlacerOptions& opts) {
  obs::Span place_span("hls.place");
  place_span.arg("ops", design.num_ops()).arg("contexts", design.num_contexts);
  const Fabric& fabric = design.fabric;
  Floorplan fp;
  fp.op_to_pe.assign(design.ops.size(), -1);
  Rng rng(opts.seed);

  const auto by_context = design.ops_by_context();
  for (int c = 0; c < design.num_contexts; ++c) {
    const std::vector<int>& ops = by_context[static_cast<size_t>(c)];
    if (ops.empty()) continue;
    const int m = static_cast<int>(ops.size());
    CGRAF_ASSERT(m <= fabric.num_pes());
    obs::Span ctx_span("hls.place_context");
    ctx_span.arg("context", c).arg("ops", m);

    // Local index per global op id.
    std::vector<int> local(design.ops.size(), -1);
    for (int i = 0; i < m; ++i) local[static_cast<size_t>(ops[static_cast<size_t>(i)])] = i;

    ContextState s;
    s.design = &design;
    s.ops = &ops;
    s.delay.resize(static_cast<size_t>(m));
    s.fanout.assign(static_cast<size_t>(m), {});
    for (int i = 0; i < m; ++i) {
      s.delay[static_cast<size_t>(i)] = op_delay_ns(
          design.ops[static_cast<size_t>(ops[static_cast<size_t>(i)])],
          fabric.delays());
    }
    std::vector<int> indeg(static_cast<size_t>(m), 0);
    for (const Edge& e : design.edges) {
      const int lf = local[static_cast<size_t>(e.from)];
      const int lt = local[static_cast<size_t>(e.to)];
      if (lf >= 0 && lt >= 0) {
        s.comb.emplace_back(lf, lt);
        s.fanout[static_cast<size_t>(lf)].push_back(lt);
        ++indeg[static_cast<size_t>(lt)];
      } else if (lt >= 0 && lf < 0 &&
                 fp.op_to_pe[static_cast<size_t>(e.from)] >= 0) {
        s.cross.emplace_back(
            lt, fabric.loc(fp.op_to_pe[static_cast<size_t>(e.from)]));
      } else if (lf >= 0 && lt < 0 &&
                 fp.op_to_pe[static_cast<size_t>(e.to)] >= 0) {
        s.cross.emplace_back(
            lf, fabric.loc(fp.op_to_pe[static_cast<size_t>(e.to)]));
      }
    }
    // Local topological order (the design is validated to be acyclic).
    {
      std::vector<int> queue;
      for (int i = 0; i < m; ++i)
        if (indeg[static_cast<size_t>(i)] == 0) queue.push_back(i);
      while (!queue.empty()) {
        const int u = queue.back();
        queue.pop_back();
        s.topo.push_back(u);
        for (const int v : s.fanout[static_cast<size_t>(u)])
          if (--indeg[static_cast<size_t>(v)] == 0) queue.push_back(v);
      }
      CGRAF_ASSERT(static_cast<int>(s.topo.size()) == m);
    }

    // Initial placement: compact square block at the origin, topo order for
    // locality between chained ops.
    const int side = std::min(
        fabric.cols(),
        std::max(1, static_cast<int>(std::ceil(std::sqrt(m)))));
    s.pos.resize(static_cast<size_t>(m));
    s.occupant.assign(static_cast<size_t>(fabric.num_pes()), -1);
    for (int i = 0; i < m; ++i) {
      const int u = s.topo[static_cast<size_t>(i)];
      Point p{i % side, i / side};
      // Fall back to scanning when the square spills past the last row.
      while (!fabric.in_bounds(p) ||
             s.occupant[static_cast<size_t>(fabric.pe_at(p))] >= 0) {
        const int pe = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(fabric.num_pes())));
        p = fabric.loc(pe);
      }
      s.pos[static_cast<size_t>(u)] = p;
      s.occupant[static_cast<size_t>(fabric.pe_at(p))] = u;
    }

    // Simulated annealing.
    double current = cost(s, fabric, opts);
    std::vector<Point> best_pos = s.pos;
    double best = current;
    const long total_moves =
        static_cast<long>(opts.moves_per_op) * std::max(8, m);
    const double cool =
        std::pow(opts.t_end / opts.t_start,
                 1.0 / static_cast<double>(std::max<long>(1, total_moves)));
    double temperature = opts.t_start;
    for (long move = 0; move < total_moves; ++move, temperature *= cool) {
      const int u = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(m)));
      const Point old_u = s.pos[static_cast<size_t>(u)];
      const int target_pe = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(fabric.num_pes())));
      const Point target = fabric.loc(target_pe);
      if (target == old_u) continue;
      const int v = s.occupant[static_cast<size_t>(target_pe)];

      // Apply move (swap if occupied).
      s.pos[static_cast<size_t>(u)] = target;
      s.occupant[static_cast<size_t>(target_pe)] = u;
      s.occupant[static_cast<size_t>(fabric.pe_at(old_u))] = v;
      if (v >= 0) s.pos[static_cast<size_t>(v)] = old_u;

      const double next = cost(s, fabric, opts);
      const double delta = next - current;
      if (delta <= 0.0 ||
          rng.next_double() < std::exp(-delta / std::max(1e-9, temperature))) {
        current = next;
        if (current < best) {
          best = current;
          best_pos = s.pos;
        }
      } else {
        // Revert.
        s.pos[static_cast<size_t>(u)] = old_u;
        s.occupant[static_cast<size_t>(fabric.pe_at(old_u))] = u;
        s.occupant[static_cast<size_t>(target_pe)] = v;
        if (v >= 0) s.pos[static_cast<size_t>(v)] = target;
      }
    }

    for (int i = 0; i < m; ++i) {
      fp.op_to_pe[static_cast<size_t>(ops[static_cast<size_t>(i)])] =
          fabric.pe_at(best_pos[static_cast<size_t>(i)]);
    }
  }

  std::string why;
  CGRAF_ASSERT(is_valid(design, fp, &why));
  return fp;
}

}  // namespace cgraf::hls
