#include "hls/dfg.h"

#include <algorithm>

#include "util/check.h"

namespace cgraf::hls {

int Dfg::add_node(OpKind kind, int bitwidth, std::string name) {
  CGRAF_ASSERT(bitwidth > 0 && bitwidth <= 64);
  nodes_.push_back(DfgNode{kind, bitwidth, std::move(name)});
  fanin_.emplace_back();
  fanout_.emplace_back();
  return static_cast<int>(nodes_.size()) - 1;
}

void Dfg::add_edge(int from, int to) {
  CGRAF_ASSERT(from >= 0 && from < num_nodes());
  CGRAF_ASSERT(to >= 0 && to < num_nodes());
  CGRAF_ASSERT(from != to);
  edges_.emplace_back(from, to);
  fanout_[static_cast<size_t>(from)].push_back(to);
  fanin_[static_cast<size_t>(to)].push_back(from);
}

std::vector<int> Dfg::topo_order() const {
  const int n = num_nodes();
  std::vector<int> indeg(static_cast<size_t>(n), 0);
  for (const auto& [from, to] : edges_) {
    (void)from;
    ++indeg[static_cast<size_t>(to)];
  }
  std::vector<int> order;
  order.reserve(static_cast<size_t>(n));
  std::vector<int> queue;
  for (int i = 0; i < n; ++i)
    if (indeg[static_cast<size_t>(i)] == 0) queue.push_back(i);
  while (!queue.empty()) {
    const int u = queue.back();
    queue.pop_back();
    order.push_back(u);
    for (const int v : fanout_[static_cast<size_t>(u)])
      if (--indeg[static_cast<size_t>(v)] == 0) queue.push_back(v);
  }
  CGRAF_ASSERT(static_cast<int>(order.size()) == n);
  return order;
}

bool Dfg::is_dag() const {
  const int n = num_nodes();
  std::vector<int> indeg(static_cast<size_t>(n), 0);
  for (const auto& [from, to] : edges_) {
    (void)from;
    ++indeg[static_cast<size_t>(to)];
  }
  std::vector<int> queue;
  for (int i = 0; i < n; ++i)
    if (indeg[static_cast<size_t>(i)] == 0) queue.push_back(i);
  int seen = 0;
  while (!queue.empty()) {
    const int u = queue.back();
    queue.pop_back();
    ++seen;
    for (const int v : fanout_[static_cast<size_t>(u)])
      if (--indeg[static_cast<size_t>(v)] == 0) queue.push_back(v);
  }
  return seen == n;
}

int Dfg::depth() const {
  std::vector<int> level(static_cast<size_t>(num_nodes()), 1);
  int deepest = num_nodes() > 0 ? 1 : 0;
  for (const int u : topo_order()) {
    for (const int v : fanout_[static_cast<size_t>(u)]) {
      level[static_cast<size_t>(v)] =
          std::max(level[static_cast<size_t>(v)],
                   level[static_cast<size_t>(u)] + 1);
      deepest = std::max(deepest, level[static_cast<size_t>(v)]);
    }
  }
  return deepest;
}

}  // namespace cgraf::hls
