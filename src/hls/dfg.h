// Dataflow graph: the post-HLS, pre-scheduling representation of a
// behavioral description (paper Fig. 1, "HLS + technology mapping").
#pragma once

#include <string>
#include <vector>

#include "cgrra/operation.h"

namespace cgraf::hls {

struct DfgNode {
  OpKind kind = OpKind::kAdd;
  int bitwidth = 32;
  std::string name;
};

class Dfg {
 public:
  int add_node(OpKind kind, int bitwidth = 32, std::string name = {});
  // Adds a dependence edge producer -> consumer. Both must exist; self
  // edges are rejected.
  void add_edge(int from, int to);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const DfgNode& node(int i) const { return nodes_[static_cast<size_t>(i)]; }
  const std::vector<DfgNode>& nodes() const { return nodes_; }
  const std::vector<std::pair<int, int>>& edges() const { return edges_; }

  const std::vector<int>& fanin(int i) const {
    return fanin_[static_cast<size_t>(i)];
  }
  const std::vector<int>& fanout(int i) const {
    return fanout_[static_cast<size_t>(i)];
  }

  // Topological order; asserts the graph is a DAG.
  std::vector<int> topo_order() const;
  bool is_dag() const;

  // Longest chain length in nodes (a lower bound on schedulable latency
  // when every dependence crosses a context boundary).
  int depth() const;

 private:
  std::vector<DfgNode> nodes_;
  std::vector<std::pair<int, int>> edges_;
  std::vector<std::vector<int>> fanin_, fanout_;
};

}  // namespace cgraf::hls
