// "musketeer_lite": the aging-unaware baseline placer.
//
// Stand-in for the commercial Musketeer P&R flow the paper builds on
// (Phase 1): a per-context simulated-annealing placement that minimizes the
// bounding-box area of the used PEs and total wirelength while keeping each
// context's critical path within the clock period. Like deterministic
// commercial packers it prefers low-index resources (an anchor pull toward
// the fabric origin), which is precisely the behaviour that concentrates
// accumulated stress and that the aging-aware re-mapper then undoes.
#pragma once

#include <cstdint>

#include "cgrra/design.h"
#include "cgrra/floorplan.h"

namespace cgraf::hls {

struct PlacerOptions {
  std::uint64_t seed = 1;
  int moves_per_op = 300;      // SA moves per op per context
  double w_wirelength = 1.0;   // same-context (combinational) wires
  double w_cross = 0.3;        // wires to already-placed earlier contexts
  double w_bbox = 3.0;         // bounding-box area of the context's PEs
  double w_anchor = 0.4;       // pull of the bbox corner toward (0,0)
  double timing_penalty = 200.0;  // per ns of context CPD over the clock
  double t_start = 3.0;
  double t_end = 0.05;
};

// Places every context of the design; returns a structurally valid
// floorplan (asserts internally on failure, which cannot happen as long as
// each context has at most fabric.num_pes() ops).
Floorplan place_baseline(const Design& design, const PlacerOptions& opts = {});

}  // namespace cgraf::hls
