// Kernel DFG generators: representative synthesizable-C kernels of the kind
// the paper's 27 proprietary benchmarks are drawn from (filters, transforms,
// linear algebra, stencils). Used by examples and tests through the full
// HLS pipeline (parse/build -> schedule -> place).
#pragma once

#include "hls/dfg.h"
#include "util/rng.h"

namespace cgraf::workloads {

// FIR filter: taps multiplies + an adder reduction tree.
hls::Dfg fir_filter(int taps, int bitwidth = 16);

// Horner polynomial evaluation of the given degree: alternating mul/add
// chain (deep dependence chain, exercises chaining + context registers).
hls::Dfg horner_poly(int degree, int bitwidth = 32);

// Dense matrix-vector product, n x n: n independent dot products.
hls::Dfg matvec(int n, int bitwidth = 16);

// 3x3 convolution stencil: 9 multiplies, adder tree, normalization shift.
hls::Dfg stencil3x3(int bitwidth = 16);

// FFT-style butterfly network: `points` inputs, log2(points) stages of
// add/sub pairs interleaved with DMU shuffles.
hls::Dfg butterfly(int points, int bitwidth = 16);

// Random layered DAG: `layers` layers of `width` ops, edges between
// adjacent layers with probability `p_edge`, DMU ops mixed in with
// probability `dmu_frac`.
hls::Dfg layered_random(Rng& rng, int layers, int width, double p_edge = 0.35,
                        double dmu_frac = 0.15, int bitwidth = 16);

}  // namespace cgraf::workloads
