#include "workloads/kernels.h"

#include <vector>

#include "util/check.h"

namespace cgraf::workloads {
namespace {

// Reduces `values` with a balanced adder tree; returns the root node.
int adder_tree(hls::Dfg& dfg, std::vector<int> values, int bitwidth) {
  CGRAF_ASSERT(!values.empty());
  while (values.size() > 1) {
    std::vector<int> next;
    for (std::size_t i = 0; i + 1 < values.size(); i += 2) {
      const int sum = dfg.add_node(OpKind::kAdd, bitwidth);
      dfg.add_edge(values[i], sum);
      dfg.add_edge(values[i + 1], sum);
      next.push_back(sum);
    }
    if (values.size() % 2 == 1) next.push_back(values.back());
    values = std::move(next);
  }
  return values.front();
}

}  // namespace

hls::Dfg fir_filter(int taps, int bitwidth) {
  CGRAF_ASSERT(taps >= 1);
  hls::Dfg dfg;
  std::vector<int> products;
  for (int t = 0; t < taps; ++t) {
    // x[n-t] * h[t]; both operands are primary inputs.
    products.push_back(dfg.add_node(OpKind::kMul, bitwidth,
                                    "mul_tap" + std::to_string(t)));
  }
  adder_tree(dfg, products, bitwidth);
  return dfg;
}

hls::Dfg horner_poly(int degree, int bitwidth) {
  CGRAF_ASSERT(degree >= 1);
  hls::Dfg dfg;
  int acc = dfg.add_node(OpKind::kMul, bitwidth, "h_mul0");  // c_n * x
  for (int d = 1; d <= degree; ++d) {
    const int add = dfg.add_node(OpKind::kAdd, bitwidth);
    dfg.add_edge(acc, add);
    if (d == degree) { acc = add; break; }
    const int mul = dfg.add_node(OpKind::kMul, bitwidth);
    dfg.add_edge(add, mul);
    acc = mul;
  }
  return dfg;
}

hls::Dfg matvec(int n, int bitwidth) {
  CGRAF_ASSERT(n >= 1);
  hls::Dfg dfg;
  for (int row = 0; row < n; ++row) {
    std::vector<int> products;
    for (int k = 0; k < n; ++k)
      products.push_back(dfg.add_node(OpKind::kMul, bitwidth));
    adder_tree(dfg, products, bitwidth);
  }
  return dfg;
}

hls::Dfg stencil3x3(int bitwidth) {
  hls::Dfg dfg;
  std::vector<int> products;
  for (int i = 0; i < 9; ++i)
    products.push_back(dfg.add_node(OpKind::kMul, bitwidth));
  const int sum = adder_tree(dfg, products, bitwidth);
  const int norm = dfg.add_node(OpKind::kShift, bitwidth, "normalize");
  dfg.add_edge(sum, norm);
  return dfg;
}

hls::Dfg butterfly(int points, int bitwidth) {
  CGRAF_ASSERT(points >= 2 && (points & (points - 1)) == 0);
  hls::Dfg dfg;
  // Stage 0 works on primary inputs; later stages consume previous values.
  std::vector<int> current(static_cast<std::size_t>(points), -1);
  for (int stage = 1; stage < points; stage <<= 1) {
    std::vector<int> next(static_cast<std::size_t>(points));
    for (int i = 0; i < points; i += 2 * stage) {
      for (int k = 0; k < stage; ++k) {
        const int a = current[static_cast<std::size_t>(i + k)];
        const int b = current[static_cast<std::size_t>(i + k + stage)];
        const int add = dfg.add_node(OpKind::kAdd, bitwidth);
        const int sub = dfg.add_node(OpKind::kSub, bitwidth);
        if (a >= 0) { dfg.add_edge(a, add); dfg.add_edge(a, sub); }
        if (b >= 0) { dfg.add_edge(b, add); dfg.add_edge(b, sub); }
        next[static_cast<std::size_t>(i + k)] = add;
        next[static_cast<std::size_t>(i + k + stage)] = sub;
      }
    }
    // Inter-stage data reordering through the DMU.
    for (int i = 0; i < points; i += 2) {
      const int shuf = dfg.add_node(OpKind::kShuffle, bitwidth);
      dfg.add_edge(next[static_cast<std::size_t>(i)], shuf);
      dfg.add_edge(next[static_cast<std::size_t>(i + 1)], shuf);
      next[static_cast<std::size_t>(i)] = shuf;
    }
    current = std::move(next);
  }
  return dfg;
}

hls::Dfg layered_random(Rng& rng, int layers, int width, double p_edge,
                        double dmu_frac, int bitwidth) {
  CGRAF_ASSERT(layers >= 1 && width >= 1);
  hls::Dfg dfg;
  std::vector<std::vector<int>> layer_nodes(static_cast<std::size_t>(layers));
  for (int l = 0; l < layers; ++l) {
    for (int i = 0; i < width; ++i) {
      const bool dmu = rng.next_bool(dmu_frac);
      const OpKind kind =
          dmu ? static_cast<OpKind>(static_cast<int>(OpKind::kMux) +
                                    rng.next_int(0, 3))
              : static_cast<OpKind>(rng.next_int(0, 7));
      const int node = dfg.add_node(kind, bitwidth);
      layer_nodes[static_cast<std::size_t>(l)].push_back(node);
      if (l > 0) {
        bool any = false;
        for (const int prev : layer_nodes[static_cast<std::size_t>(l - 1)]) {
          if (rng.next_bool(p_edge)) {
            dfg.add_edge(prev, node);
            any = true;
          }
        }
        if (!any) {
          const auto& prev = layer_nodes[static_cast<std::size_t>(l - 1)];
          dfg.add_edge(prev[static_cast<std::size_t>(rng.next_below(
                           prev.size()))],
                       node);
        }
      }
    }
  }
  return dfg;
}

}  // namespace cgraf::workloads
