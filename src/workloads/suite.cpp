#include "workloads/suite.h"

#include <algorithm>
#include <cmath>

#include "cgrra/stress.h"
#include "util/check.h"

namespace cgraf::workloads {

const char* to_string(UsageBand band) {
  switch (band) {
    case UsageBand::kLow: return "low";
    case UsageBand::kMedium: return "medium";
    case UsageBand::kHigh: return "high";
  }
  return "?";
}

std::vector<BenchmarkSpec> table1_specs(bool paper_scale) {
  const int contexts[] = {4, 8, 16};
  const int dims_default[] = {4, 6, 8};
  const int dims_paper[] = {4, 8, 16};
  const UsageBand bands[] = {UsageBand::kLow, UsageBand::kMedium,
                             UsageBand::kHigh};
  const double base_usage[] = {0.33, 0.52, 0.72};

  std::vector<BenchmarkSpec> specs;
  int number = 1;
  for (int b = 0; b < 3; ++b) {
    for (int c = 0; c < 3; ++c) {
      for (int d = 0; d < 3; ++d) {
        BenchmarkSpec spec;
        spec.name = "B" + std::to_string(number);
        spec.contexts = contexts[c];
        spec.fabric_dim = paper_scale ? dims_paper[d] : dims_default[d];
        spec.band = bands[b];
        // Small deterministic jitter so the 27 entries are not clones.
        spec.usage = base_usage[b] + 0.015 * ((number * 7) % 5 - 2);
        spec.seed = 0x5eedULL * 1000003ULL + static_cast<std::uint64_t>(number);
        specs.push_back(std::move(spec));
        ++number;
      }
    }
  }
  return specs;
}

Design generate_multicontext_design(const Fabric& fabric, int contexts,
                                    const std::vector<int>& ops_per_context,
                                    Rng& rng, double dmu_frac) {
  CGRAF_ASSERT(contexts > 0);
  CGRAF_ASSERT(static_cast<int>(ops_per_context.size()) == contexts);

  Design d{fabric, contexts, {}, {}};
  // PE-delay budget for a combinational cluster: leave wire headroom so the
  // baseline placer can meet the clock (see ScheduleOptions comment).
  const double budget = 0.78 * fabric.clock_period_ns();
  const int widths[] = {8, 16, 32};

  std::vector<std::vector<int>> heads_by_context(
      static_cast<std::size_t>(contexts));
  std::vector<std::vector<int>> all_by_context(
      static_cast<std::size_t>(contexts));

  auto add_op = [&](OpKind kind, int bw, int context) {
    Operation op;
    op.id = d.num_ops();
    op.kind = kind;
    op.bitwidth = bw;
    op.context = context;
    d.ops.push_back(op);
    all_by_context[static_cast<std::size_t>(context)].push_back(op.id);
    return op.id;
  };
  auto alu_kind = [&] { return static_cast<OpKind>(rng.next_int(0, 7)); };
  auto dmu_kind = [&] {
    return static_cast<OpKind>(static_cast<int>(OpKind::kMux) +
                               rng.next_int(0, 3));
  };

  for (int c = 0; c < contexts; ++c) {
    const int target = ops_per_context[static_cast<std::size_t>(c)];
    CGRAF_ASSERT(target >= 1 && target <= fabric.num_pes());
    int made = 0;
    while (made < target) {
      // One combinational cluster: a chain whose PE delays fit the budget.
      const int want = std::min(target - made, rng.next_int(1, 4));
      const int bw = widths[rng.next_below(3)];
      double chain_delay = 0.0;
      int prev = -1;
      int cluster_head = -1;
      for (int k = 0; k < want; ++k) {
        const bool use_dmu = rng.next_bool(dmu_frac);
        Operation probe;
        probe.kind = use_dmu ? dmu_kind() : alu_kind();
        probe.bitwidth = bw;
        double delay = op_delay_ns(probe, fabric.delays());
        if (chain_delay > 0.0 && chain_delay + delay > budget) {
          // Chain is full; retry as an ALU op, else stop the cluster here.
          probe.kind = alu_kind();
          delay = op_delay_ns(probe, fabric.delays());
          if (chain_delay + delay > budget) break;
        }
        const int id = add_op(probe.kind, bw, c);
        if (prev >= 0) d.edges.push_back(Edge{prev, id});
        else cluster_head = id;
        chain_delay += delay;
        prev = id;
        ++made;
      }
      if (cluster_head >= 0)
        heads_by_context[static_cast<std::size_t>(c)].push_back(cluster_head);
    }

    // Wire cluster heads to producers in earlier contexts (registered
    // cross-context dataflow), as HLS would.
    if (c > 0) {
      for (const int head : heads_by_context[static_cast<std::size_t>(c)]) {
        const int n_inputs = rng.next_int(1, 2);
        for (int i = 0; i < n_inputs; ++i) {
          const int src_ctx = rng.next_int(0, c - 1);
          const auto& pool = all_by_context[static_cast<std::size_t>(src_ctx)];
          if (pool.empty()) continue;
          const int src =
              pool[static_cast<std::size_t>(rng.next_below(pool.size()))];
          d.edges.push_back(Edge{src, head});
        }
      }
    }
  }
  return d;
}

GeneratedBenchmark generate_benchmark(const BenchmarkSpec& spec,
                                      const hls::PlacerOptions& placer_opts) {
  Rng rng(spec.seed);
  Fabric fabric(spec.fabric_dim, spec.fabric_dim);

  const int n_pes = fabric.num_pes();
  std::vector<int> per_context(static_cast<std::size_t>(spec.contexts));
  for (int c = 0; c < spec.contexts; ++c) {
    const double jitter = 1.0 + 0.10 * (rng.next_double() - 0.5);
    per_context[static_cast<std::size_t>(c)] = std::clamp(
        static_cast<int>(std::lround(spec.usage * n_pes * jitter)), 1, n_pes);
  }

  GeneratedBenchmark out{
      spec,
      generate_multicontext_design(fabric, spec.contexts, per_context, rng),
      Floorplan{}, 0};
  out.total_ops = out.design.num_ops();

  hls::PlacerOptions popts = placer_opts;
  popts.seed = spec.seed ^ 0x9e3779b97f4a7c15ULL;
  out.baseline = hls::place_baseline(out.design, popts);
  return out;
}

}  // namespace cgraf::workloads
