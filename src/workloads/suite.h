// The B1-B27 benchmark suite of the paper's Table I, re-created as a
// deterministic generator.
//
// Table I characterizes each proprietary benchmark only by (a) context
// count, (b) fabric size and (c) mapped-operation count ("PE #", i.e. the
// fabric usage band); the generator reproduces exactly those knobs. Each
// benchmark is a multi-context netlist of combinational clusters (chained
// ALU/DMU ops that fit the clock period) wired across contexts, followed by
// the aging-unaware baseline placement (musketeer_lite).
#pragma once

#include <string>
#include <vector>

#include "cgrra/design.h"
#include "cgrra/floorplan.h"
#include "hls/placer.h"
#include "util/rng.h"

namespace cgraf::workloads {

enum class UsageBand { kLow, kMedium, kHigh };
const char* to_string(UsageBand band);

struct BenchmarkSpec {
  std::string name;  // "B1".."B27"
  int contexts = 4;
  int fabric_dim = 4;  // fabric is fabric_dim x fabric_dim
  UsageBand band = UsageBand::kLow;
  double usage = 0.33;  // target total_ops / (contexts * num_pes)
  std::uint64_t seed = 0;
};

struct GeneratedBenchmark {
  BenchmarkSpec spec;
  Design design;
  Floorplan baseline;
  int total_ops = 0;  // Table I's "PE #": total mapped operation instances
};

// The 27-entry grid of Table I: contexts {4,8,16} x three fabric sizes x
// {low, medium, high} usage. `paper_scale` selects the paper's fabrics
// {4x4, 8x8, 16x16}; the default uses {4x4, 6x6, 8x8} (see DESIGN.md §5,
// scaling policy for the from-scratch MILP solver).
std::vector<BenchmarkSpec> table1_specs(bool paper_scale = false);

// Deterministically generates the netlist and its aging-unaware baseline
// floorplan for one spec.
GeneratedBenchmark generate_benchmark(const BenchmarkSpec& spec,
                                      const hls::PlacerOptions& placer = {});

// Lower-level netlist generator: context c receives ops_per_context[c]
// operations arranged in combinational clusters, with cross-context input
// edges. Exposed for tests and custom experiments.
Design generate_multicontext_design(const Fabric& fabric, int contexts,
                                    const std::vector<int>& ops_per_context,
                                    Rng& rng, double dmu_frac = 0.18);

}  // namespace cgraf::workloads
