// Floating-point comparison helpers with explicit intent.
//
// Raw `==`/`!=` on floating values is banned in the solver/physics kernels
// (code-lint rule CL003, tools/cgraf_lint): a threshold check written as
// `x == 1.0` silently breaks the first time `x` arrives through a different
// arithmetic path. Every comparison must say what it means:
//
//   - approx_eq / approx_ne: tolerance comparison, the default for any value
//     produced by arithmetic (absolute floor for values near zero plus a
//     relative term for large magnitudes).
//   - near_zero: |x| <= tol, for cancellation / residual checks.
//   - exact_eq / exact_ne: bit-exact comparison as a *contract*. Use only
//     when the value was stored, never computed — e.g. a model coefficient
//     the builder wrote as a literal 1.0, or an infinity sentinel. CL003
//     recognizes these calls as sanctioned, so no suppression comment is
//     needed at the call site.
#pragma once

#include <algorithm>
#include <cmath>

namespace cgraf::util {

inline constexpr double kDefaultAbsTol = 1e-9;
inline constexpr double kDefaultRelTol = 1e-9;

// |x| <= tol. NaN yields false.
inline bool near_zero(double x, double tol = kDefaultAbsTol) {
  return std::fabs(x) <= tol;
}

// |a - b| <= abs_tol + rel_tol * max(|a|, |b|). Equal infinities of the
// same sign compare equal; any NaN yields false.
inline bool approx_eq(double a, double b, double abs_tol = kDefaultAbsTol,
                      double rel_tol = kDefaultRelTol) {
  if (a == b) return true;  // covers same-sign inf and exact hits
  // Unequal non-finite operands never compare equal: inf vs -inf would
  // otherwise satisfy `inf <= inf` against an infinite relative window,
  // and inf vs any finite value likewise.
  if (!std::isfinite(a) || !std::isfinite(b)) return false;
  const double diff = std::fabs(a - b);
  return diff <= abs_tol + rel_tol * std::max(std::fabs(a), std::fabs(b));
}

inline bool approx_ne(double a, double b, double abs_tol = kDefaultAbsTol,
                      double rel_tol = kDefaultRelTol) {
  return !approx_eq(a, b, abs_tol, rel_tol);
}

// Deliberate bit-exact equality: the caller asserts the operands were
// assigned, not computed, so exact comparison is the contract.
inline bool exact_eq(double a, double b) { return a == b; }
inline bool exact_ne(double a, double b) { return a != b; }

}  // namespace cgraf::util
