#include "util/rng.h"

#include <limits>

namespace cgraf {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not be seeded with the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  CGRAF_ASSERT(n > 0);
  // Lemire-style rejection: draw until the value falls in the largest
  // multiple of n that fits in 64 bits.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

int Rng::next_int(int lo, int hi) {
  CGRAF_ASSERT(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(hi) - lo) + 1;
  return lo + static_cast<int>(next_below(span));
}

double Rng::next_double() {
  // 53 random bits scaled to [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Rng Rng::split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace cgraf
