// Console rendering helpers: aligned tables (for Table I style output) and
// grid heat maps (for Fig. 2(a) style stress maps).
#pragma once

#include <string>
#include <vector>

namespace cgraf {

// A simple aligned-columns table. Cells are strings; numeric formatting is
// the caller's job (see fmt_double below).
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  // A horizontal separator line between row groups.
  void add_separator();

  // Render with single-space-padded columns and `|` separators.
  std::string render() const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> header_;
  // Empty vector encodes a separator row.
  std::vector<std::vector<std::string>> rows_;
};

// Fixed-precision double formatting ("%.*f").
std::string fmt_double(double v, int precision);

// Renders a rows x cols grid of non-negative values as a shaded heat map
// using a ramp of ASCII glyphs, normalized to the max value (or `scale_max`
// if positive). Includes a legend line.
std::string render_heat_map(const std::vector<double>& values, int rows,
                            int cols, double scale_max = -1.0);

}  // namespace cgraf
