// 2-D integer grid geometry used by the CGRRA fabric and the floorplanner.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <cstdlib>

namespace cgraf {

// A PE coordinate on the fabric. `x` is the column, `y` the row; (0,0) is
// the top-left corner.
struct Point {
  int x = 0;
  int y = 0;

  friend constexpr auto operator<=>(const Point&, const Point&) = default;
  constexpr Point operator+(Point o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(Point o) const { return {x - o.x, y - o.y}; }
};

// Manhattan (L1) distance; the paper's buffered-wire delay model is linear
// in this distance.
constexpr int manhattan(Point a, Point b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

// Inclusive axis-aligned bounding box.
struct Rect {
  int x0 = 0, y0 = 0, x1 = -1, y1 = -1;  // empty by default (x1 < x0)

  constexpr bool empty() const { return x1 < x0 || y1 < y0; }
  constexpr int width() const { return empty() ? 0 : x1 - x0 + 1; }
  constexpr int height() const { return empty() ? 0 : y1 - y0 + 1; }
  constexpr long long area() const {
    return static_cast<long long>(width()) * height();
  }
  constexpr bool contains(Point p) const {
    return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
  }

  // Grow the box to cover `p`.
  constexpr void expand(Point p) {
    if (empty()) {
      x0 = x1 = p.x;
      y0 = y1 = p.y;
      return;
    }
    x0 = std::min(x0, p.x);
    x1 = std::max(x1, p.x);
    y0 = std::min(y0, p.y);
    y1 = std::max(y1, p.y);
  }

  friend constexpr bool operator==(const Rect&, const Rect&) = default;
};

}  // namespace cgraf
