// Annotated synchronization layer: Clang thread-safety (capability)
// analysis, a runtime lock-order detector, and per-mutex contention
// counters.
//
// Why wrappers instead of std::mutex directly:
//   - Compile-time lock discipline. Under Clang with -Wthread-safety
//     (cmake -DCGRAF_THREAD_SAFETY=ON promotes it to an error), a field
//     annotated CGRAF_GUARDED_BY(mu) cannot be touched without holding
//     `mu`, and a function annotated CGRAF_REQUIRES(mu) cannot be called
//     without it. Data races on annotated state become compile errors
//     instead of TSan repros. Under GCC (or any compiler without the
//     capability attributes) every macro expands to nothing and Mutex is a
//     thin std::mutex wrapper.
//   - Deadlock-cycle detection. Every Mutex carries a rank from the global
//     lock hierarchy below. When detection is on (default in debug builds;
//     set_deadlock_detection() overrides at runtime), each thread keeps a
//     stack of held locks and acquiring a mutex whose rank is <= any held
//     rank aborts with both lock names — the moment a potential A->B/B->A
//     cycle exists, not the unlucky run where it deadlocks.
//   - Contention visibility. Each Mutex counts acquisitions, contended
//     acquisitions (the uncontended try_lock fast path failed) and the
//     seconds spent blocked; obs::export_sync_metrics() publishes the
//     per-name aggregates through the metrics registry.
//
// The lock hierarchy (see DESIGN.md "Concurrency model"): a thread may only
// acquire mutexes in strictly increasing rank order. Ranks are spaced so
// new locks can slot between existing levels.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>

#include "util/check.h"

// --- Clang capability-analysis attributes (no-ops elsewhere) -------------

#ifdef __has_attribute
#define CGRAF_HAS_ATTRIBUTE(x) __has_attribute(x)
#else
#define CGRAF_HAS_ATTRIBUTE(x) 0
#endif

#if CGRAF_HAS_ATTRIBUTE(capability)
#define CGRAF_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CGRAF_THREAD_ANNOTATION(x)
#endif

// On types: declares a capability ("mutex" in diagnostics).
#define CGRAF_CAPABILITY(x) CGRAF_THREAD_ANNOTATION(capability(x))
// On RAII types whose constructor acquires and destructor releases.
#define CGRAF_SCOPED_CAPABILITY CGRAF_THREAD_ANNOTATION(scoped_lockable)
// On data members: may only be read/written while holding the capability.
#define CGRAF_GUARDED_BY(x) CGRAF_THREAD_ANNOTATION(guarded_by(x))
// On pointer members: the pointee is protected by the capability.
#define CGRAF_PT_GUARDED_BY(x) CGRAF_THREAD_ANNOTATION(pt_guarded_by(x))
// On functions: caller must hold / must not hold the capability.
#define CGRAF_REQUIRES(...) \
  CGRAF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CGRAF_EXCLUDES(...) CGRAF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// On functions: acquire/release the capability (no argument: `this`).
#define CGRAF_ACQUIRE(...) \
  CGRAF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CGRAF_RELEASE(...) \
  CGRAF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CGRAF_TRY_ACQUIRE(...) \
  CGRAF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// On functions returning a reference to a guarded capability.
#define CGRAF_RETURN_CAPABILITY(x) CGRAF_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch; use only with a comment explaining why it is safe.
#define CGRAF_NO_THREAD_SAFETY_ANALYSIS \
  CGRAF_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cgraf {

// The process-wide lock hierarchy. Acquisition order must be strictly
// increasing in rank; document every addition in DESIGN.md §10.
namespace lock_rank {
// milp: branch & bound shared search state (node pool, incumbent, worker
// coordination). Lowest rank: workers publish results into the obs layer
// (rank >= 20) while holding it during result assembly.
inline constexpr int kBnbShared = 10;
// core: portfolio race coordination (winner slot + finish signaling).
// Racer threads never hold it while running a solver, and the coordinator
// never acquires solver locks, so it slots independently between the B&B
// shared state and the obs layer (the publish path emits obs events only
// after unlocking).
inline constexpr int kPortfolio = 15;
// obs: progress reporter output serialization.
inline constexpr int kObsProgress = 20;
// obs: tracer event buffer and thread-track table.
inline constexpr int kObsTracer = 30;
// obs: metrics registry maps. Metric registration happens under solver
// locks, never the other way around.
inline constexpr int kObsMetrics = 40;
// obs: event-log buffer registry (the list of per-thread buffers).
inline constexpr int kObsEventLog = 45;
// obs: one per-thread event buffer. Acquired after the registry on the
// flush-all path; emitting threads take only their own buffer's lock.
inline constexpr int kObsEventBuf = 50;
// obs: the event-log sink (file or in-memory capture). Highest rank: a
// buffer flush holds its buffer lock while appending to the sink.
inline constexpr int kObsEventSink = 55;
}  // namespace lock_rank

// Snapshot of one mutex's (or one name's aggregated) contention counters.
struct MutexStats {
  long acquisitions = 0;   // successful lock()/try_lock() entries
  long contended = 0;      // lock() calls whose try_lock fast path failed
  double wait_seconds = 0.0;  // total time blocked in contended lock()s
};

class CondVar;

// A std::mutex carrying a diagnostic name, a lock-hierarchy rank and
// contention counters. Satisfies BasicLockable/Lockable, so it also works
// with std::lock_guard / std::unique_lock where the annotated MutexLock
// does not fit — but those scopes are invisible to the capability analysis,
// so prefer MutexLock.
//
// `name` must outlive the mutex (string literals in practice); it keys the
// registry aggregation, so give every mutex guarding the same logical state
// the same name (e.g. one per B&B solve is fine).
class CGRAF_CAPABILITY("mutex") Mutex {
 public:
  Mutex(const char* name, int rank);
  ~Mutex();
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // Blocking acquire. Aborts on a lock-hierarchy rank inversion when
  // deadlock detection is on (the check runs before blocking, so the
  // potential deadlock is reported instead of hit).
  void lock() CGRAF_ACQUIRE();
  void unlock() CGRAF_RELEASE();
  // Non-blocking acquire; exempt from the rank check (it cannot deadlock),
  // but a success still pushes onto the held-lock stack and is counted.
  bool try_lock() CGRAF_TRY_ACQUIRE(true);

  const char* name() const { return name_; }
  int rank() const { return rank_; }
  MutexStats stats() const;
  void reset_stats();

 private:
  friend class CondVar;

  std::mutex raw_;
  const char* const name_;
  const int rank_;
  std::atomic<long> acquisitions_{0};
  std::atomic<long> contended_{0};
  std::atomic<double> wait_seconds_{0.0};
};

// RAII lock for Mutex, visible to the capability analysis. Supports
// temporary release (unlock()/lock()) within the scope, which the analysis
// tracks; the destructor releases only if currently held.
class CGRAF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) CGRAF_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_->lock();
  }
  ~MutexLock() CGRAF_RELEASE() {
    if (held_) mu_->unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() CGRAF_ACQUIRE() {
    CGRAF_ASSERT(!held_);
    mu_->lock();
    held_ = true;
  }
  void unlock() CGRAF_RELEASE() {
    CGRAF_ASSERT(held_);
    held_ = false;
    mu_->unlock();
  }

 private:
  Mutex* const mu_;
  bool held_;
};

// Condition variable bound to Mutex. wait() atomically releases the mutex
// (popping it from the held-lock stack) and reacquires it before returning,
// so the detector state stays consistent across waits. No predicate
// overload on purpose: a predicate lambda is analyzed without the caller's
// capability context, so guarded reads inside it would trip -Wthread-safety.
// Write the standard loop instead:
//
//   MutexLock lk(&mu);
//   while (!ready) cv.wait(mu);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) CGRAF_REQUIRES(mu);
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// Runtime switch for the lock-order detector. Defaults to on in debug
// builds (!NDEBUG) and off in release; tests force it on regardless of
// build type. The contention counters are always live.
void set_deadlock_detection(bool enabled);
bool deadlock_detection_enabled();

// Per-name contention counters, aggregated over every live mutex plus the
// accumulated totals of destroyed ones (so short-lived mutexes like the
// branch & bound's per-solve lock still show up after the solve).
std::map<std::string, MutexStats> sync_mutex_stats();
// Zeroes the aggregates: drops retired totals and resets live counters.
void reset_sync_mutex_stats();

}  // namespace cgraf
