// Deterministic, seedable PRNG (xoshiro256** seeded via splitmix64).
//
// Everything stochastic in the repository (SA placer moves, rotation
// orientation draws, workload generation) goes through this type with an
// explicit seed so that every table in bench/ reproduces bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "util/check.h"

namespace cgraf {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  // Uniform over [0, 2^64).
  std::uint64_t next_u64();

  // Uniform over [0, n). Requires n > 0. Unbiased (rejection sampling).
  std::uint64_t next_below(std::uint64_t n);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int next_int(int lo, int hi);

  // Uniform double in [0, 1).
  double next_double();

  // Bernoulli(p).
  bool next_bool(double p) { return next_double() < p; }

  // Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    const auto n = c.size();
    for (std::size_t i = n; i > 1; --i) {
      const auto j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  // Derive an independent child stream (for per-benchmark seeding).
  Rng split();

 private:
  std::uint64_t s_[4] = {};
};

}  // namespace cgraf
