// Contract-checking macros (Core Guidelines I.6/I.8 style).
//
// CGRAF_ASSERT is active in all build types: the floorplanner is a CAD tool,
// not a hot inner loop, and silent corruption of a floorplan is far more
// expensive than the branch. CGRAF_DCHECK compiles out in release builds and
// is reserved for checks inside solver inner loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cgraf {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "cgraf: %s failed: %s at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace cgraf

#define CGRAF_ASSERT(expr)                                             \
  ((expr) ? static_cast<void>(0)                                       \
          : ::cgraf::contract_failure("assertion", #expr, __FILE__, __LINE__))

#ifndef NDEBUG
#define CGRAF_DCHECK(expr) CGRAF_ASSERT(expr)
#else
#define CGRAF_DCHECK(expr) static_cast<void>(0)
#endif
