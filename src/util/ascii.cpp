#include "util/ascii.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace cgraf {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  CGRAF_ASSERT(!header_.empty());
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  CGRAF_ASSERT(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void AsciiTable::add_separator() { rows_.emplace_back(); }

std::string AsciiTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }

  auto render_line = [&](const std::vector<std::string>& cells) {
    std::string out = "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out += ' ';
      out += cell;
      out.append(width[c] - cell.size(), ' ');
      out += " |";
    }
    out += '\n';
    return out;
  };
  auto rule = [&] {
    std::string out = "+";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      out.append(width[c] + 2, '-');
      out += '+';
    }
    out += '\n';
    return out;
  };

  std::string out = rule() + render_line(header_) + rule();
  for (const auto& row : rows_) {
    out += row.empty() ? rule() : render_line(row);
  }
  out += rule();
  return out;
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string render_heat_map(const std::vector<double>& values, int rows,
                            int cols, double scale_max) {
  CGRAF_ASSERT(rows > 0 && cols > 0);
  CGRAF_ASSERT(values.size() == static_cast<std::size_t>(rows) * cols);
  static constexpr char kRamp[] = {'.', ':', '-', '=', '+', '*', '#', '@'};
  constexpr int kLevels = static_cast<int>(sizeof kRamp);

  double vmax = scale_max;
  if (vmax <= 0.0) {
    vmax = 0.0;
    for (double v : values) vmax = std::max(vmax, v);
  }

  std::string out;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const double v = values[static_cast<std::size_t>(r) * cols + c];
      char glyph = ' ';
      if (v > 0.0 && vmax > 0.0) {
        int level = static_cast<int>(v / vmax * kLevels);
        level = std::clamp(level, 0, kLevels - 1);
        glyph = kRamp[level];
      }
      out += glyph;
      out += ' ';
    }
    out += '\n';
  }
  out += "legend: ' '=0";
  for (int i = 0; i < kLevels; ++i) {
    out += "  '";
    out += kRamp[i];
    out += "'<=" + fmt_double(vmax * (i + 1) / kLevels, 2);
  }
  out += '\n';
  return out;
}

}  // namespace cgraf
