#include "util/sync.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "util/clock.h"

namespace cgraf {
namespace {

#ifdef NDEBUG
constexpr bool kDetectByDefault = false;
#else
constexpr bool kDetectByDefault = true;
#endif

std::atomic<bool> g_deadlock_detection{kDetectByDefault};

// Per-thread stack of currently held annotated mutexes. Fixed capacity:
// the lock hierarchy is four levels deep today, so 32 is generous; pushes
// past the cap are dropped (and the matching pop tolerates a miss) rather
// than corrupting memory.
constexpr int kMaxHeld = 32;
struct HeldStack {
  const Mutex* held[kMaxHeld];
  int n = 0;
};
thread_local HeldStack t_held;

[[noreturn]] void lock_order_failure(const Mutex* acquiring,
                                     const Mutex* held) {
  std::fprintf(stderr,
               "cgraf: lock-order violation: acquiring \"%s\" (rank %d) "
               "while holding \"%s\" (rank %d); ranks must be strictly "
               "increasing along every acquisition chain (see DESIGN.md "
               "\"Concurrency model\")\n",
               acquiring->name(), acquiring->rank(), held->name(),
               held->rank());
  std::abort();
}

// Runs before blocking on `m`, so a potential deadlock cycle is reported
// instead of hit. Re-acquiring `m` itself trips the check too (equal
// rank): std::mutex self-deadlocks, and the hierarchy forbids equal ranks
// in one chain anyway.
void check_rank_order(const Mutex* m) {
  if (!g_deadlock_detection.load(std::memory_order_relaxed)) return;
  for (int i = 0; i < t_held.n; ++i) {
    if (t_held.held[i]->rank() >= m->rank()) lock_order_failure(m, t_held.held[i]);
  }
}

void push_held(const Mutex* m) {
  if (t_held.n < kMaxHeld) t_held.held[t_held.n++] = m;
}

// Removes the most recent entry for `m`. Scans from the top: releases are
// usually LIFO but out-of-order unlock is legal and must not desync the
// stack. Tolerates a miss (push dropped at capacity, or detection toggled
// mid-critical-section).
void pop_held(const Mutex* m) {
  for (int i = t_held.n - 1; i >= 0; --i) {
    if (t_held.held[i] == m) {
      for (int j = i + 1; j < t_held.n; ++j) t_held.held[j - 1] = t_held.held[j];
      --t_held.n;
      return;
    }
  }
}

// Live-mutex registry plus per-name totals of destroyed mutexes. Guarded
// by a plain std::mutex deliberately: the registry is below every annotated
// Mutex (construction/destruction must never recurse into rank checking),
// and it leaks by design so static-lifetime mutexes (the obs singletons)
// can deregister safely during exit teardown.
struct SyncRegistry {
  std::mutex mu;
  std::vector<Mutex*> live;
  std::map<std::string, MutexStats> retired;
};

SyncRegistry& sync_registry() {
  static SyncRegistry* r = new SyncRegistry;
  return *r;
}

void accumulate(MutexStats& into, const MutexStats& s) {
  into.acquisitions += s.acquisitions;
  into.contended += s.contended;
  into.wait_seconds += s.wait_seconds;
}

}  // namespace

Mutex::Mutex(const char* name, int rank) : name_(name), rank_(rank) {
  SyncRegistry& reg = sync_registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  reg.live.push_back(this);
}

Mutex::~Mutex() {
  SyncRegistry& reg = sync_registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  reg.live.erase(std::remove(reg.live.begin(), reg.live.end(), this),
                 reg.live.end());
  accumulate(reg.retired[name_], stats());
}

void Mutex::lock() {
  check_rank_order(this);
  if (!raw_.try_lock()) {
    contended_.fetch_add(1, std::memory_order_relaxed);
    const double t0 = now_seconds();
    raw_.lock();
    wait_seconds_.fetch_add(now_seconds() - t0, std::memory_order_relaxed);
  }
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  push_held(this);
}

void Mutex::unlock() {
  pop_held(this);
  raw_.unlock();
}

bool Mutex::try_lock() {
  if (!raw_.try_lock()) return false;
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  push_held(this);
  return true;
}

MutexStats Mutex::stats() const {
  return {acquisitions_.load(std::memory_order_relaxed),
          contended_.load(std::memory_order_relaxed),
          wait_seconds_.load(std::memory_order_relaxed)};
}

void Mutex::reset_stats() {
  acquisitions_.store(0, std::memory_order_relaxed);
  contended_.store(0, std::memory_order_relaxed);
  wait_seconds_.store(0.0, std::memory_order_relaxed);
}

void CondVar::wait(Mutex& mu) {
  // The wait releases and reacquires mu.raw_ internally; mirror that on the
  // held-lock stack so the detector's view stays consistent. The reacquire
  // is counted as an acquisition but not as contention: blocking on the
  // condition is intended, not lock contention.
  pop_held(&mu);
  std::unique_lock<std::mutex> lk(mu.raw_, std::adopt_lock);
  cv_.wait(lk);
  lk.release();
  mu.acquisitions_.fetch_add(1, std::memory_order_relaxed);
  push_held(&mu);
}

void set_deadlock_detection(bool enabled) {
  g_deadlock_detection.store(enabled, std::memory_order_relaxed);
}

bool deadlock_detection_enabled() {
  return g_deadlock_detection.load(std::memory_order_relaxed);
}

std::map<std::string, MutexStats> sync_mutex_stats() {
  SyncRegistry& reg = sync_registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  std::map<std::string, MutexStats> out = reg.retired;
  for (const Mutex* m : reg.live) accumulate(out[m->name()], m->stats());
  return out;
}

void reset_sync_mutex_stats() {
  SyncRegistry& reg = sync_registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  reg.retired.clear();
  for (Mutex* m : reg.live) m->reset_stats();
}

}  // namespace cgraf
