// Shared monotonic wall-clock helper for solver timing and limits.
#pragma once

#include <chrono>

namespace cgraf {

// Seconds on the steady (monotonic) clock; only differences are meaningful.
inline double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

}  // namespace cgraf
