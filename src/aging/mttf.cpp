#include "aging/mttf.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace cgraf::aging {

MttfReport compute_mttf(const Design& design, const Floorplan& fp,
                        const NbtiParams& nbti,
                        const thermal::ThermalParams& thermal_params) {
  MttfReport report;
  report.stress = compute_stress(design, fp);

  const int n = design.fabric.num_pes();
  CGRAF_ASSERT(design.num_contexts > 0);

  // Average duty cycle of each PE across one full context round: the
  // accumulated stress time divided by the number of cycles in the round.
  std::vector<double> activity(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    activity[static_cast<std::size_t>(i)] = std::clamp(
        report.stress.accumulated[static_cast<std::size_t>(i)] /
            design.num_contexts,
        0.0, 1.0);
  }
  report.pe_temperature_k =
      thermal::steady_state_temperature(design.fabric, activity,
                                        thermal_params);

  report.pe_mttf_seconds.resize(static_cast<std::size_t>(n));
  report.mttf_seconds = std::numeric_limits<double>::infinity();
  for (int i = 0; i < n; ++i) {
    const double sr = activity[static_cast<std::size_t>(i)];
    const double t = report.pe_temperature_k[static_cast<std::size_t>(i)];
    const double mttf = mttf_seconds(nbti, sr, t);
    report.pe_mttf_seconds[static_cast<std::size_t>(i)] = mttf;
    report.max_temp_k = std::max(report.max_temp_k, t);
    if (mttf < report.mttf_seconds) {
      report.mttf_seconds = mttf;
      report.limiting_pe = i;
      report.limiting_sr = sr;
      report.limiting_temp_k = t;
    }
  }
  report.mttf_years = report.mttf_seconds / kSecondsPerYear;
  return report;
}

}  // namespace cgraf::aging
