#include "aging/mechanisms.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace cgraf::aging {

double hci_shift_v(const HciParams& p, double sr, double temp_k,
                   double t_seconds) {
  CGRAF_ASSERT(sr >= 0.0 && sr <= 1.0 + 1e-9);
  CGRAF_ASSERT(temp_k > 0.0);
  if (sr <= 0.0 || t_seconds <= 0.0) return 0.0;
  const double arrhenius = std::exp(-p.ea_ev / (p.boltzmann_ev * temp_k));
  // Effective stress: toggling time accumulated over the busy fraction; the
  // absolute cycle count is absorbed into a_hci's calibration, and a
  // sqrt-frequency factor keeps clock scaling physical (more injections
  // per second at higher f).
  const double eff = p.toggle_factor * sr * t_seconds;
  const double freq_scale = std::sqrt(std::max(1e-12, p.clock_hz / 200e6));
  return p.a_hci * std::pow(eff, p.n) * arrhenius * freq_scale * p.vth0_v;
}

double hci_mttf_seconds(const HciParams& p, double sr, double temp_k) {
  CGRAF_ASSERT(temp_k > 0.0);
  if (sr <= 0.0) return std::numeric_limits<double>::infinity();
  const double arrhenius = std::exp(-p.ea_ev / (p.boltzmann_ev * temp_k));
  const double freq_scale =
      std::sqrt(std::max(1e-12, p.clock_hz / 200e6));
  const double rhs =
      p.fail_shift_frac / (p.a_hci * arrhenius * freq_scale);
  return std::pow(rhs, 1.0 / p.n) / (p.toggle_factor * sr);
}

double em_mttf_seconds(const EmParams& p, double sr, double temp_k) {
  CGRAF_ASSERT(temp_k > 0.0);
  const double j = p.j_leak + p.j_active * std::clamp(sr, 0.0, 1.0);
  if (j <= 0.0) return std::numeric_limits<double>::infinity();
  return p.a_em / std::pow(j, p.current_exponent) *
         std::exp(p.ea_ev / (p.boltzmann_ev * temp_k));
}

const char* to_string(Mechanism m) {
  switch (m) {
    case Mechanism::kNbti: return "NBTI";
    case Mechanism::kHci: return "HCI";
    case Mechanism::kEm: return "EM";
  }
  return "?";
}

CombinedMttfReport compute_mttf_combined(
    const Design& design, const Floorplan& fp,
    const CombinedAgingParams& params,
    const thermal::ThermalParams& thermal_params) {
  const StressMap stress = compute_stress(design, fp);
  const int n = design.fabric.num_pes();

  std::vector<double> activity(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    activity[static_cast<std::size_t>(i)] = std::clamp(
        stress.accumulated[static_cast<std::size_t>(i)] /
            design.num_contexts,
        0.0, 1.0);
  }

  CombinedMttfReport report;
  report.pe_temperature_k =
      thermal::steady_state_temperature(design.fabric, activity,
                                        thermal_params);
  report.pe_mttf_seconds.resize(static_cast<std::size_t>(n));
  report.mttf_seconds = std::numeric_limits<double>::infinity();
  report.nbti_mttf_seconds = std::numeric_limits<double>::infinity();
  report.hci_mttf_seconds = std::numeric_limits<double>::infinity();
  report.em_mttf_seconds = std::numeric_limits<double>::infinity();

  for (int i = 0; i < n; ++i) {
    const double sr = activity[static_cast<std::size_t>(i)];
    const double t = report.pe_temperature_k[static_cast<std::size_t>(i)];
    double worst = std::numeric_limits<double>::infinity();
    Mechanism worst_mechanism = Mechanism::kNbti;
    if (params.enable_nbti) {
      const double v = mttf_seconds(params.nbti, sr, t);
      report.nbti_mttf_seconds = std::min(report.nbti_mttf_seconds, v);
      if (v < worst) {
        worst = v;
        worst_mechanism = Mechanism::kNbti;
      }
    }
    if (params.enable_hci) {
      const double v = hci_mttf_seconds(params.hci, sr, t);
      report.hci_mttf_seconds = std::min(report.hci_mttf_seconds, v);
      if (v < worst) {
        worst = v;
        worst_mechanism = Mechanism::kHci;
      }
    }
    if (params.enable_em) {
      const double v = em_mttf_seconds(params.em, sr, t);
      report.em_mttf_seconds = std::min(report.em_mttf_seconds, v);
      if (v < worst) {
        worst = v;
        worst_mechanism = Mechanism::kEm;
      }
    }
    report.pe_mttf_seconds[static_cast<std::size_t>(i)] = worst;
    if (worst < report.mttf_seconds) {
      report.mttf_seconds = worst;
      report.limiting_pe = i;
      report.limiting_mechanism = worst_mechanism;
    }
  }
  report.mttf_years = report.mttf_seconds / kSecondsPerYear;
  return report;
}

}  // namespace cgraf::aging
