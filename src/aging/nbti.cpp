#include "aging/nbti.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace cgraf::aging {

double vth_shift_v(const NbtiParams& p, double sr, double temp_k,
                   double t_seconds) {
  CGRAF_ASSERT(sr >= 0.0 && sr <= 1.0 + 1e-9);
  CGRAF_ASSERT(temp_k > 0.0);
  CGRAF_ASSERT(t_seconds >= 0.0);
  if (sr <= 0.0 || t_seconds <= 0.0) return 0.0;
  const double arrhenius = std::exp(-p.ea_ev / (p.boltzmann_ev * temp_k));
  return p.a_nbti * std::pow(sr * t_seconds, p.n) * arrhenius * p.vth0_v;
}

double mttf_seconds(const NbtiParams& p, double sr, double temp_k) {
  CGRAF_ASSERT(temp_k > 0.0);
  if (sr <= 0.0) return std::numeric_limits<double>::infinity();
  const double arrhenius = std::exp(-p.ea_ev / (p.boltzmann_ev * temp_k));
  // (sr * t)^n = fail_shift_frac / (A * arrhenius)   [Vth0 cancels]
  const double rhs = p.fail_shift_frac / (p.a_nbti * arrhenius);
  return std::pow(rhs, 1.0 / p.n) / sr;
}

}  // namespace cgraf::aging
