// Fabric-level MTTF evaluation of a floorplan (paper Section III, Phase 1
// and Step 3 of Algorithm 1): stress map -> thermal map -> per-PE NBTI
// failure time -> fabric MTTF (first PE failure kills the fabric).
#pragma once

#include <vector>

#include "aging/nbti.h"
#include "cgrra/design.h"
#include "cgrra/floorplan.h"
#include "cgrra/stress.h"
#include "thermal/hotspot_lite.h"

namespace cgraf::aging {

struct MttfReport {
  double mttf_seconds = 0.0;
  double mttf_years = 0.0;
  int limiting_pe = -1;          // the PE that fails first
  double limiting_sr = 0.0;      // its average duty cycle
  double limiting_temp_k = 0.0;  // its steady-state temperature
  double max_temp_k = 0.0;
  std::vector<double> pe_mttf_seconds;  // +inf for unstressed PEs
  std::vector<double> pe_temperature_k;
  StressMap stress;
};

MttfReport compute_mttf(const Design& design, const Floorplan& fp,
                        const NbtiParams& nbti = {},
                        const thermal::ThermalParams& thermal = {});

}  // namespace cgraf::aging
