// Additional aging mechanisms beyond NBTI (paper Section I lists NBTI, HCI,
// EM and TDDB as the dominant degradation factors; the evaluation models
// NBTI because it dominates, but the re-mapper's stress levelling helps all
// activity-driven mechanisms).
//
//  - HCI (hot-carrier injection): Vth drift driven by switching activity,
//    dVth = A_hci * (f * SR * t)^n * exp(-Ea/kT). Its effective activation
//    energy is small and *negative* (HCI worsens slightly when cold),
//    unlike NBTI.
//  - EM (electromigration), Black's equation: MTTF = A / J^m * exp(Ea/kT),
//    with the current density J proportional to the PE's duty cycle.
//
// compute_mttf_combined() treats the mechanisms as competing risks: a PE
// fails when its first mechanism fails, and the fabric fails with its
// first PE.
#pragma once

#include "aging/mttf.h"

namespace cgraf::aging {

struct HciParams {
  // Technology factor, calibrated (like NBTI's) so a ~30% duty PE at the
  // model's operating point fails in O(10 years) — HCI is secondary to
  // NBTI at these conditions, as the paper assumes.
  double a_hci = 4.5e-6;
  double n = 0.5;                 // HCI time exponent (~sqrt(t))
  double ea_ev = -0.05;           // slightly negative: worse when cold
  double boltzmann_ev = 8.617e-5;
  double clock_hz = 200e6;
  double vth0_v = 0.40;
  double fail_shift_frac = 0.10;
  // Fraction of a PE's busy time its gates actually toggle.
  double toggle_factor = 0.15;
};

// Vth drift (V) after t_seconds at duty cycle `sr` and temperature temp_k.
double hci_shift_v(const HciParams& p, double sr, double temp_k,
                   double t_seconds);
// Closed-form inversion; +inf at sr == 0.
double hci_mttf_seconds(const HciParams& p, double sr, double temp_k);

struct EmParams {
  double a_em = 3.0e-6;  // scale factor (seconds at J = 1, T -> inf)
  double current_exponent = 2.0;  // Black's exponent m
  double ea_ev = 0.85;
  double boltzmann_ev = 8.617e-5;
  // Current density model: J = j_leak + j_active * duty (normalized units).
  double j_leak = 0.05;
  double j_active = 1.0;
};

double em_mttf_seconds(const EmParams& p, double sr, double temp_k);

enum class Mechanism { kNbti, kHci, kEm };
const char* to_string(Mechanism m);

struct CombinedAgingParams {
  NbtiParams nbti{};
  HciParams hci{};
  EmParams em{};
  bool enable_nbti = true;
  bool enable_hci = true;
  bool enable_em = true;
};

struct CombinedMttfReport {
  double mttf_seconds = 0.0;
  double mttf_years = 0.0;
  int limiting_pe = -1;
  Mechanism limiting_mechanism = Mechanism::kNbti;
  // Fabric-level MTTF per mechanism (min over PEs, that mechanism alone).
  double nbti_mttf_seconds = 0.0;
  double hci_mttf_seconds = 0.0;
  double em_mttf_seconds = 0.0;
  std::vector<double> pe_mttf_seconds;  // competing-risk per-PE failure time
  std::vector<double> pe_temperature_k;
};

CombinedMttfReport compute_mttf_combined(
    const Design& design, const Floorplan& fp,
    const CombinedAgingParams& params = {},
    const thermal::ThermalParams& thermal = {});

}  // namespace cgraf::aging
