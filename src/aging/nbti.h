// NBTI threshold-voltage degradation model (paper Eq. (1)) and its
// closed-form MTTF inversion.
//
//   Vth_shift(t) = A_NBTI * (SR * t)^n * exp(-Ea / (k*T)) * Vth0
//
// where SR is the stress rate (duty cycle in [0,1]), t is wall-clock time,
// T is temperature in Kelvin. The fabric fails when the shift reaches
// `fail_shift_frac * Vth0` (10% in the paper, after [3]); solving for t:
//
//   MTTF = (fail_shift_frac / (A_NBTI * exp(-Ea/kT)))^(1/n) / SR
//
// Note that in stress-ratio terms the exponent n cancels (MTTF is inversely
// proportional to the stress rate) while the temperature term is amplified
// by 1/n — matching the slope behaviour of the paper's Fig. 2(b).
#pragma once

namespace cgraf::aging {

struct NbtiParams {
  // Technology factor, calibrated so that a PE at 50% duty and ~348 K fails
  // after ~3 years (a plausible commercial-device baseline; the evaluation
  // metric is the before/after MTTF *ratio*, which is insensitive to this).
  double a_nbti = 2.0e5;
  double n = 0.20;           // fabrication-dependent time exponent
  double ea_ev = 0.49;       // activation energy (eV)
  double boltzmann_ev = 8.617e-5;  // eV/K
  double vth0_v = 0.40;
  double fail_shift_frac = 0.10;   // fail at 10% Vth increase
};

// Threshold-voltage shift (V) after `t_seconds` at stress rate `sr` and
// temperature `temp_k`.
double vth_shift_v(const NbtiParams& p, double sr, double temp_k,
                   double t_seconds);

// Closed-form time-to-failure (seconds) for a single PE. Returns +inf when
// sr == 0 (an unstressed PE never fails under this model).
double mttf_seconds(const NbtiParams& p, double sr, double temp_k);

constexpr double kSecondsPerYear = 365.25 * 24 * 3600;

}  // namespace cgraf::aging
