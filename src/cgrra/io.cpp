#include "cgrra/io.h"

#include <climits>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace cgraf {
namespace {

// Adversarial-input ceilings. The text format arrives from untrusted
// sources (fixtures, shell pipelines, eventually a service socket), so the
// declared counts are capped *before* any allocation sized by them, and the
// raw input is capped before tokenization. The semantic halves of the same
// limits live in verify::InputLintOptions, which re-checks the in-memory
// structs; keep the two in sync.
constexpr std::size_t kMaxInputBytes = 16u * 1024u * 1024u;
constexpr int kMaxContexts = 4096;
constexpr int kMaxOps = 1000000;
constexpr int kMaxEdges = 4000000;
constexpr long kMaxFabricPes = 64 * 1024;

// Tokenized view of the input with '#' comments and blank lines removed.
struct Lines {
  std::vector<std::vector<std::string>> tokens;
  std::vector<int> line_no;

  explicit Lines(const std::string& text) {
    std::istringstream in(text);
    std::string line;
    int no = 0;
    while (std::getline(in, line)) {
      ++no;
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream ls(line);
      std::vector<std::string> toks;
      std::string tok;
      while (ls >> tok) toks.push_back(tok);
      if (toks.empty()) continue;
      tokens.push_back(std::move(toks));
      line_no.push_back(no);
    }
  }
};

bool set_error(std::string* error, const std::string& message, int line = -1) {
  if (error != nullptr) {
    *error = line >= 0 ? "line " + std::to_string(line) + ": " + message
                       : message;
  }
  return false;
}

bool parse_int(const std::string& s, int* out) {
  try {
    std::size_t pos = 0;
    const long v = std::stol(s, &pos);
    if (pos != s.size() || v < INT_MIN || v > INT_MAX) return false;
    *out = static_cast<int>(v);
    return true;
  } catch (...) {
    return false;
  }
}

bool parse_double(const std::string& s, double* out) {
  try {
    std::size_t pos = 0;
    *out = std::stod(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

std::optional<OpKind> op_kind_from_string(const std::string& name) {
  static constexpr OpKind kAll[] = {
      OpKind::kAdd, OpKind::kSub, OpKind::kAnd, OpKind::kOr,
      OpKind::kXor, OpKind::kCmp, OpKind::kShift, OpKind::kMul,
      OpKind::kMux, OpKind::kShuffle, OpKind::kExtract, OpKind::kMerge};
  for (const OpKind k : kAll) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

std::string to_text(const Design& design) {
  std::string out = "cgraf-design v1\n";
  char buf[160];
  const Fabric& f = design.fabric;
  std::snprintf(buf, sizeof buf, "fabric %d %d %.9g %.9g %.9g %.9g %.9g %.9g\n",
                f.rows(), f.cols(), f.clock_period_ns(),
                f.unit_wire_delay_ns(), f.delays().alu_delay_ns,
                f.delays().dmu_delay_ns, f.delays().width_offset,
                f.delays().width_slope);
  out += buf;
  out += "contexts " + std::to_string(design.num_contexts) + "\n";
  out += "ops " + std::to_string(design.num_ops()) + "\n";
  for (const Operation& op : design.ops) {
    std::snprintf(buf, sizeof buf, "op %d %s %d %d\n", op.id,
                  to_string(op.kind), op.bitwidth, op.context);
    out += buf;
  }
  out += "edges " + std::to_string(design.edges.size()) + "\n";
  for (const Edge& e : design.edges) {
    std::snprintf(buf, sizeof buf, "edge %d %d\n", e.from, e.to);
    out += buf;
  }
  out += "end\n";
  return out;
}

std::string to_text(const Floorplan& fp) {
  std::string out = "cgraf-floorplan v1\n";
  out += "ops " + std::to_string(fp.op_to_pe.size()) + "\n";
  for (std::size_t i = 0; i < fp.op_to_pe.size(); ++i) {
    out += "map " + std::to_string(i) + " " + std::to_string(fp.op_to_pe[i]) +
           "\n";
  }
  out += "end\n";
  return out;
}

std::optional<Design> design_from_text(const std::string& text,
                                       std::string* error) {
  if (text.size() > kMaxInputBytes) {
    set_error(error, "input of " + std::to_string(text.size()) +
                         " bytes exceeds the " +
                         std::to_string(kMaxInputBytes) + " byte limit");
    return std::nullopt;
  }
  const Lines lines(text);
  std::size_t i = 0;
  auto expect = [&](const std::string& what, std::size_t arity) {
    if (i >= lines.tokens.size()) {
      set_error(error, "unexpected end of input, expected '" + what + "'");
      return false;
    }
    if (lines.tokens[i][0] != what || lines.tokens[i].size() < arity + 1) {
      set_error(error, "expected '" + what + "' with " +
                           std::to_string(arity) + " field(s)",
                lines.line_no[i]);
      return false;
    }
    return true;
  };

  if (i >= lines.tokens.size() || lines.tokens[i].size() < 2 ||
      lines.tokens[i][0] != "cgraf-design" || lines.tokens[i][1] != "v1") {
    set_error(error, "missing 'cgraf-design v1' header");
    return std::nullopt;
  }
  ++i;

  if (!expect("fabric", 8)) return std::nullopt;
  int rows = 0, cols = 0;
  double clock = 0, uwd = 0;
  PeDelayModel delays;
  const auto& ft = lines.tokens[i];
  if (!parse_int(ft[1], &rows) || !parse_int(ft[2], &cols) ||
      !parse_double(ft[3], &clock) || !parse_double(ft[4], &uwd) ||
      !parse_double(ft[5], &delays.alu_delay_ns) ||
      !parse_double(ft[6], &delays.dmu_delay_ns) ||
      !parse_double(ft[7], &delays.width_offset) ||
      !parse_double(ft[8], &delays.width_slope) || rows <= 0 || cols <= 0 ||
      // Fabric's constructor asserts these; NaN must not slip past the
      // comparisons (NaN <= 0 is false), so check finiteness explicitly.
      !std::isfinite(clock) || clock <= 0 || !std::isfinite(uwd) || uwd < 0 ||
      !std::isfinite(delays.alu_delay_ns) || delays.alu_delay_ns <= 0 ||
      !std::isfinite(delays.dmu_delay_ns) || delays.dmu_delay_ns <= 0 ||
      !std::isfinite(delays.width_offset) ||
      !std::isfinite(delays.width_slope)) {
    set_error(error, "malformed fabric line", lines.line_no[i]);
    return std::nullopt;
  }
  // 64-bit product: hostile dimensions must not overflow int before the
  // comparison (num_pes() multiplies them as int downstream).
  if (static_cast<long>(rows) * static_cast<long>(cols) > kMaxFabricPes) {
    set_error(error, "fabric of " + std::to_string(rows) + "x" +
                         std::to_string(cols) + " PEs exceeds the " +
                         std::to_string(kMaxFabricPes) + " PE limit",
              lines.line_no[i]);
    return std::nullopt;
  }
  ++i;

  if (!expect("contexts", 1)) return std::nullopt;
  int contexts = 0;
  if (!parse_int(lines.tokens[i][1], &contexts) || contexts <= 0 ||
      contexts > kMaxContexts) {
    set_error(error, "malformed contexts line (limit " +
                         std::to_string(kMaxContexts) + ")",
              lines.line_no[i]);
    return std::nullopt;
  }
  ++i;

  Design design{Fabric(rows, cols, clock, uwd, delays), contexts, {}, {}};

  if (!expect("ops", 1)) return std::nullopt;
  int n_ops = 0;
  if (!parse_int(lines.tokens[i][1], &n_ops) || n_ops < 0 ||
      n_ops > kMaxOps) {
    set_error(error, "malformed ops line (limit " + std::to_string(kMaxOps) +
                         ")",
              lines.line_no[i]);
    return std::nullopt;
  }
  ++i;
  design.ops.reserve(static_cast<std::size_t>(n_ops));
  for (int k = 0; k < n_ops; ++k) {
    if (!expect("op", 4)) return std::nullopt;
    const auto& t = lines.tokens[i];
    Operation op;
    const std::optional<OpKind> kind = op_kind_from_string(t[2]);
    if (!parse_int(t[1], &op.id) || !kind || !parse_int(t[3], &op.bitwidth) ||
        !parse_int(t[4], &op.context) || op.id != k || op.bitwidth <= 0 ||
        op.bitwidth > 64 || op.context < 0 || op.context >= contexts) {
      set_error(error, "malformed op line (ids must be dense, 0-based)",
                lines.line_no[i]);
      return std::nullopt;
    }
    op.kind = *kind;
    design.ops.push_back(op);
    ++i;
  }

  if (!expect("edges", 1)) return std::nullopt;
  int n_edges = 0;
  if (!parse_int(lines.tokens[i][1], &n_edges) || n_edges < 0 ||
      n_edges > kMaxEdges) {
    set_error(error, "malformed edges line (limit " +
                         std::to_string(kMaxEdges) + ")",
              lines.line_no[i]);
    return std::nullopt;
  }
  ++i;
  design.edges.reserve(static_cast<std::size_t>(n_edges));
  for (int k = 0; k < n_edges; ++k) {
    if (!expect("edge", 2)) return std::nullopt;
    Edge e;
    if (!parse_int(lines.tokens[i][1], &e.from) ||
        !parse_int(lines.tokens[i][2], &e.to) || e.from < 0 ||
        e.from >= n_ops || e.to < 0 || e.to >= n_ops || e.from == e.to) {
      set_error(error, "malformed edge line", lines.line_no[i]);
      return std::nullopt;
    }
    design.edges.push_back(e);
    ++i;
  }

  if (!expect("end", 0)) return std::nullopt;
  if (i + 1 < lines.tokens.size()) {
    set_error(error, "trailing junk after 'end'", lines.line_no[i + 1]);
    return std::nullopt;
  }
  return design;
}

std::optional<Floorplan> floorplan_from_text(const std::string& text,
                                             std::string* error) {
  if (text.size() > kMaxInputBytes) {
    set_error(error, "input of " + std::to_string(text.size()) +
                         " bytes exceeds the " +
                         std::to_string(kMaxInputBytes) + " byte limit");
    return std::nullopt;
  }
  const Lines lines(text);
  std::size_t i = 0;
  if (i >= lines.tokens.size() || lines.tokens[i].size() < 2 ||
      lines.tokens[i][0] != "cgraf-floorplan" || lines.tokens[i][1] != "v1") {
    set_error(error, "missing 'cgraf-floorplan v1' header");
    return std::nullopt;
  }
  ++i;
  if (i >= lines.tokens.size() || lines.tokens[i][0] != "ops" ||
      lines.tokens[i].size() < 2) {
    set_error(error, "expected 'ops <N>'");
    return std::nullopt;
  }
  int n = 0;
  if (!parse_int(lines.tokens[i][1], &n) || n < 0 || n > kMaxOps) {
    set_error(error, "malformed ops line (limit " + std::to_string(kMaxOps) +
                         ")",
              lines.line_no[i]);
    return std::nullopt;
  }
  ++i;
  Floorplan fp;
  fp.op_to_pe.assign(static_cast<std::size_t>(n), -1);
  for (int k = 0; k < n; ++k) {
    if (i >= lines.tokens.size() || lines.tokens[i][0] != "map" ||
        lines.tokens[i].size() < 3) {
      set_error(error, "expected 'map <op> <pe>'");
      return std::nullopt;
    }
    int op = 0, pe = 0;
    if (!parse_int(lines.tokens[i][1], &op) ||
        !parse_int(lines.tokens[i][2], &pe) || op < 0 || op >= n || pe < 0) {
      set_error(error, "malformed map line", lines.line_no[i]);
      return std::nullopt;
    }
    if (fp.op_to_pe[static_cast<std::size_t>(op)] != -1) {
      set_error(error, "duplicate map line for op " + std::to_string(op),
                lines.line_no[i]);
      return std::nullopt;
    }
    fp.op_to_pe[static_cast<std::size_t>(op)] = pe;
    ++i;
  }
  if (i >= lines.tokens.size() || lines.tokens[i][0] != "end") {
    set_error(error, "expected 'end'");
    return std::nullopt;
  }
  if (i + 1 < lines.tokens.size()) {
    set_error(error, "trailing junk after 'end'", lines.line_no[i + 1]);
    return std::nullopt;
  }
  for (const int pe : fp.op_to_pe) {
    if (pe < 0) {
      set_error(error, "not every op was mapped");
      return std::nullopt;
    }
  }
  return fp;
}

bool write_file(const std::string& path, const std::string& content,
                std::string* error) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return set_error(error, "cannot open '" + path + "' for writing");
  out << content;
  out.flush();
  if (!out) return set_error(error, "failed writing '" + path + "'");
  return true;
}

std::optional<std::string> read_file(const std::string& path,
                                     std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    set_error(error, "cannot open '" + path + "'");
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace cgraf
