// Accumulated NBTI stress-time maps (paper Fig. 2(a) / Section III).
#pragma once

#include <vector>

#include "cgrra/design.h"
#include "cgrra/floorplan.h"

namespace cgraf {

struct StressMap {
  // accumulated[pe]: total stress time (in fractions of a clock period)
  // contributed by all contexts over one full configuration round.
  std::vector<double> accumulated;
  // per_context[c][pe]: stress contributed by context c alone.
  std::vector<std::vector<double>> per_context;

  double max_accumulated() const;
  // Mean over *all* fabric PEs (the paper's ST_low in the Step-1 binary
  // search), not just the used ones.
  double avg_accumulated() const;
  int argmax() const;
};

StressMap compute_stress(const Design& design, const Floorplan& fp);

}  // namespace cgraf
