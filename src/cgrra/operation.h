// Operations after HLS + technology mapping onto PEs.
#pragma once

#include <string>

#include "cgrra/fabric.h"

namespace cgraf {

// Operation kinds. The first group maps onto a PE's ALU, the second onto
// its (slower) DMU — matching the paper's two-unit PE characterization.
enum class OpKind {
  // ALU
  kAdd,
  kSub,
  kAnd,
  kOr,
  kXor,
  kCmp,
  kShift,
  kMul,
  // DMU (data-manipulation unit)
  kMux,
  kShuffle,
  kExtract,
  kMerge,
};

constexpr bool is_dmu(OpKind k) { return k >= OpKind::kMux; }
const char* to_string(OpKind k);

struct Operation {
  int id = -1;
  OpKind kind = OpKind::kAdd;
  int bitwidth = 32;
  int context = -1;  // clock cycle (context index) this op executes in
  std::string name;
};

// PE-internal delay of the operation (ns), from the fabric's delay model.
// The multiplier is mapped on the ALU but at a 1.6x delay penalty, standard
// for CGRA ALUs with a fused multiplier stage.
double op_delay_ns(const Operation& op, const PeDelayModel& model);

// Stress rate contributed by executing this operation for one cycle:
// the fraction of the clock period the PE's transistors are under stress
// (paper Section III: delay / clock period).
double op_stress(const Operation& op, const Fabric& fabric);

}  // namespace cgraf
