// A floorplan: the operation-to-PE binding for every context.
#pragma once

#include <string>
#include <vector>

#include "cgrra/design.h"

namespace cgraf {

struct Floorplan {
  std::vector<int> op_to_pe;  // indexed by op id

  int pe_of(int op) const { return op_to_pe[static_cast<std::size_t>(op)]; }
};

// Checks structural validity:
//  - every op is bound to a PE inside the fabric,
//  - no two ops of the same context share a PE,
//  - the design itself is sane (contexts in range, edges are a DAG whose
//    cross-context edges only go forward in time).
// On failure returns false and, if `why` is non-null, a human-readable
// reason.
bool is_valid(const Design& design, const Floorplan& fp,
              std::string* why = nullptr);

// Number of distinct PEs used in any context (Table I's "PE #" counts the
// total op count; this helper reports distinct fabric PEs touched).
int distinct_pes_used(const Design& design, const Floorplan& fp);

}  // namespace cgraf
