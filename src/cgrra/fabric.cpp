#include "cgrra/fabric.h"

#include "util/check.h"

namespace cgraf {

Fabric::Fabric(int rows, int cols, double clock_period_ns,
               double unit_wire_delay_ns, PeDelayModel delays)
    : rows_(rows),
      cols_(cols),
      clock_period_ns_(clock_period_ns),
      unit_wire_delay_ns_(unit_wire_delay_ns),
      delays_(delays) {
  CGRAF_ASSERT(rows > 0 && cols > 0);
  CGRAF_ASSERT(clock_period_ns > 0.0);
  CGRAF_ASSERT(unit_wire_delay_ns >= 0.0);
  CGRAF_ASSERT(delays.alu_delay_ns > 0.0 && delays.dmu_delay_ns > 0.0);
}

}  // namespace cgraf
