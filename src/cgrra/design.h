// A mapped multi-context design: the output of HLS + technology mapping
// (paper Phase 1 input to floorplanning). Operations carry their context
// (clock-cycle) assignment; edges are dataflow dependences.
//
// Edges whose endpoints share a context are *combinational* (chained inside
// one cycle) and contribute to timing paths; edges that cross contexts go
// through the context registers and only constrain the schedule.
#pragma once

#include <vector>

#include "cgrra/fabric.h"
#include "cgrra/operation.h"

namespace cgraf {

struct Edge {
  int from = -1;  // producer op id
  int to = -1;    // consumer op id
};

struct Design {
  Fabric fabric;
  int num_contexts = 0;
  std::vector<Operation> ops;
  std::vector<Edge> edges;

  int num_ops() const { return static_cast<int>(ops.size()); }

  // Ops grouped by context, in id order.
  std::vector<std::vector<int>> ops_by_context() const {
    std::vector<std::vector<int>> by(static_cast<std::size_t>(num_contexts));
    for (const Operation& op : ops)
      by[static_cast<std::size_t>(op.context)].push_back(op.id);
    return by;
  }

  bool same_context(const Edge& e) const {
    return ops[static_cast<std::size_t>(e.from)].context ==
           ops[static_cast<std::size_t>(e.to)].context;
  }
};

}  // namespace cgraf
