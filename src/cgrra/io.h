// Text serialization of designs and floorplans.
//
// A simple line-based format so mapped designs and floorplans can move
// between the CLI tools, be diffed, and be checked into test fixtures:
//
//   cgraf-design v1
//   fabric <rows> <cols> <clock_ns> <unit_wire_ns> <alu_ns> <dmu_ns>
//          <width_offset> <width_slope>   (one line)
//   contexts <C>
//   ops <N>
//   op <id> <kind> <bitwidth> <context>
//   ...
//   edges <E>
//   edge <from> <to>
//   ...
//   end
//
//   cgraf-floorplan v1
//   ops <N>
//   map <op> <pe>
//   ...
//   end
//
// '#' starts a comment; blank lines are ignored. Parsers return
// std::nullopt with a positional error message on malformed input.
//
// The parsers are hardened against adversarial bytes: the raw input is
// capped at 16 MiB, declared counts are capped (4096 contexts, 1M ops, 4M
// edges, 64K PEs) before any allocation sized by them, duplicate/negative
// map lines and trailing junk after 'end' are rejected. Deeper semantic
// validation (dangling edges are caught here, but e.g. combinational
// cycles or floorplan exclusivity are not) is verify/input_lint.h's DL
// rules; load through verify::accept_design_text to get both.
#pragma once

#include <optional>
#include <string>

#include "cgrra/design.h"
#include "cgrra/floorplan.h"

namespace cgraf {

std::string to_text(const Design& design);
std::string to_text(const Floorplan& fp);

std::optional<Design> design_from_text(const std::string& text,
                                       std::string* error = nullptr);
std::optional<Floorplan> floorplan_from_text(const std::string& text,
                                             std::string* error = nullptr);

// OpKind <-> string (uses the names from to_string(OpKind)).
std::optional<OpKind> op_kind_from_string(const std::string& name);

// Small file helpers used by the CLI.
bool write_file(const std::string& path, const std::string& content,
                std::string* error = nullptr);
std::optional<std::string> read_file(const std::string& path,
                                     std::string* error = nullptr);

}  // namespace cgraf
