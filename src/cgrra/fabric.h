// The multi-context CGRRA fabric model (paper Fig. 1).
//
// A fabric is an R x C array of processing elements (PEs). Each PE contains
// an ALU and a DMU; in any given context a PE executes at most one mapped
// operation. Inter-PE wires are buffered, so wire delay is linear in
// Manhattan distance (paper Section V.B): delay = unit_wire_delay * dist.
#pragma once

#include "util/check.h"
#include "util/geometry.h"

namespace cgraf {

// Post-characterization delays of the two functional units inside a PE at
// the reference bitwidth (32 bit). The 0.87ns/3.14ns values are the paper's
// own characterization numbers (Section III).
struct PeDelayModel {
  double alu_delay_ns = 0.87;
  double dmu_delay_ns = 3.14;
  // Delay scaling vs. bitwidth: delay(bw) = base * (offset + slope*bw/32).
  // Captures that narrow operators are faster; offset+slope = 1 at 32 bit.
  double width_offset = 0.55;
  double width_slope = 0.45;
};

class Fabric {
 public:
  Fabric(int rows, int cols, double clock_period_ns = 5.0,
         double unit_wire_delay_ns = 0.15, PeDelayModel delays = {});

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int num_pes() const { return rows_ * cols_; }

  Point loc(int pe) const {
    CGRAF_DCHECK(pe >= 0 && pe < num_pes());
    return Point{pe % cols_, pe / cols_};
  }
  int pe_at(Point p) const {
    CGRAF_DCHECK(in_bounds(p));
    return p.y * cols_ + p.x;
  }
  bool in_bounds(Point p) const {
    return p.x >= 0 && p.x < cols_ && p.y >= 0 && p.y < rows_;
  }

  // 200 MHz in the paper's experiments => 5 ns.
  double clock_period_ns() const { return clock_period_ns_; }
  double unit_wire_delay_ns() const { return unit_wire_delay_ns_; }
  const PeDelayModel& delays() const { return delays_; }

  double wire_delay_ns(Point a, Point b) const {
    return unit_wire_delay_ns_ * manhattan(a, b);
  }

 private:
  int rows_;
  int cols_;
  double clock_period_ns_;
  double unit_wire_delay_ns_;
  PeDelayModel delays_;
};

}  // namespace cgraf
