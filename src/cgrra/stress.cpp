#include "cgrra/stress.h"

#include <algorithm>

#include "util/check.h"

namespace cgraf {

double StressMap::max_accumulated() const {
  double m = 0.0;
  for (const double v : accumulated) m = std::max(m, v);
  return m;
}

double StressMap::avg_accumulated() const {
  if (accumulated.empty()) return 0.0;
  double s = 0.0;
  for (const double v : accumulated) s += v;
  return s / static_cast<double>(accumulated.size());
}

int StressMap::argmax() const {
  CGRAF_ASSERT(!accumulated.empty());
  return static_cast<int>(std::max_element(accumulated.begin(),
                                           accumulated.end()) -
                          accumulated.begin());
}

StressMap compute_stress(const Design& design, const Floorplan& fp) {
  CGRAF_ASSERT(fp.op_to_pe.size() == design.ops.size());
  const int n_pes = design.fabric.num_pes();
  StressMap map;
  map.accumulated.assign(static_cast<std::size_t>(n_pes), 0.0);
  map.per_context.assign(static_cast<std::size_t>(design.num_contexts),
                         std::vector<double>(static_cast<std::size_t>(n_pes),
                                             0.0));
  for (const Operation& op : design.ops) {
    const int pe = fp.pe_of(op.id);
    const double st = op_stress(op, design.fabric);
    map.accumulated[static_cast<std::size_t>(pe)] += st;
    map.per_context[static_cast<std::size_t>(op.context)]
                   [static_cast<std::size_t>(pe)] += st;
  }
  return map;
}

}  // namespace cgraf
