#include "cgrra/floorplan.h"

#include <algorithm>
#include <set>

namespace cgraf {

bool is_valid(const Design& design, const Floorplan& fp, std::string* why) {
  auto fail = [&](std::string reason) {
    if (why != nullptr) *why = std::move(reason);
    return false;
  };

  if (fp.op_to_pe.size() != design.ops.size())
    return fail("floorplan size does not match op count");
  if (design.num_contexts <= 0) return fail("design has no contexts");

  for (const Operation& op : design.ops) {
    if (op.context < 0 || op.context >= design.num_contexts)
      return fail("op " + std::to_string(op.id) + " has context out of range");
    const int pe = fp.pe_of(op.id);
    if (pe < 0 || pe >= design.fabric.num_pes())
      return fail("op " + std::to_string(op.id) + " bound outside fabric");
  }

  // PE exclusivity within each context.
  std::set<std::pair<int, int>> used;  // (context, pe)
  for (const Operation& op : design.ops) {
    if (!used.insert({op.context, fp.pe_of(op.id)}).second) {
      return fail("context " + std::to_string(op.context) + " maps two ops to PE " +
                  std::to_string(fp.pe_of(op.id)));
    }
  }

  // Edges must respect op ids and never flow backwards in time.
  for (const Edge& e : design.edges) {
    if (e.from < 0 || e.from >= design.num_ops() || e.to < 0 ||
        e.to >= design.num_ops() || e.from == e.to)
      return fail("malformed edge");
    const int cf = design.ops[static_cast<std::size_t>(e.from)].context;
    const int ct = design.ops[static_cast<std::size_t>(e.to)].context;
    if (cf > ct) return fail("edge flows backwards across contexts");
  }

  // Same-context edges must form a DAG (combinational loops are illegal).
  const int n = design.num_ops();
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  int comb_edges = 0;
  for (const Edge& e : design.edges) {
    if (!design.same_context(e)) continue;
    adj[static_cast<std::size_t>(e.from)].push_back(e.to);
    ++indeg[static_cast<std::size_t>(e.to)];
    ++comb_edges;
  }
  std::vector<int> queue;
  for (int i = 0; i < n; ++i)
    if (indeg[static_cast<std::size_t>(i)] == 0) queue.push_back(i);
  int seen = 0;
  while (!queue.empty()) {
    const int u = queue.back();
    queue.pop_back();
    ++seen;
    for (const int v : adj[static_cast<std::size_t>(u)])
      if (--indeg[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
  }
  if (seen != n) return fail("combinational cycle within a context");
  (void)comb_edges;

  return true;
}

int distinct_pes_used(const Design& design, const Floorplan& fp) {
  std::set<int> pes;
  for (const Operation& op : design.ops) pes.insert(fp.pe_of(op.id));
  return static_cast<int>(pes.size());
}

}  // namespace cgraf
