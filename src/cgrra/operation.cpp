#include "cgrra/operation.h"

#include "util/check.h"

namespace cgraf {

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kAdd: return "add";
    case OpKind::kSub: return "sub";
    case OpKind::kAnd: return "and";
    case OpKind::kOr: return "or";
    case OpKind::kXor: return "xor";
    case OpKind::kCmp: return "cmp";
    case OpKind::kShift: return "shift";
    case OpKind::kMul: return "mul";
    case OpKind::kMux: return "mux";
    case OpKind::kShuffle: return "shuffle";
    case OpKind::kExtract: return "extract";
    case OpKind::kMerge: return "merge";
  }
  return "?";
}

double op_delay_ns(const Operation& op, const PeDelayModel& model) {
  CGRAF_DCHECK(op.bitwidth > 0 && op.bitwidth <= 64);
  const double base = is_dmu(op.kind) ? model.dmu_delay_ns : model.alu_delay_ns;
  const double mul_penalty = op.kind == OpKind::kMul ? 1.6 : 1.0;
  const double width =
      model.width_offset + model.width_slope * op.bitwidth / 32.0;
  return base * mul_penalty * width;
}

double op_stress(const Operation& op, const Fabric& fabric) {
  return op_delay_ns(op, fabric.delays()) / fabric.clock_period_ns();
}

}  // namespace cgraf
