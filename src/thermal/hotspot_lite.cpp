#include "thermal/hotspot_lite.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "util/check.h"

namespace cgraf::thermal {

std::vector<double> steady_state_temperature(const Fabric& fabric,
                                             const std::vector<double>& activity,
                                             const ThermalParams& p) {
  const int n = fabric.num_pes();
  CGRAF_ASSERT(static_cast<int>(activity.size()) == n);
  CGRAF_ASSERT(p.vertical_resistance > 0.0);
  CGRAF_ASSERT(p.lateral_conductance >= 0.0);

  const double gv = 1.0 / p.vertical_resistance;
  std::vector<double> power(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double a = activity[static_cast<std::size_t>(i)];
    CGRAF_ASSERT(a >= -1e-9 && a <= 1.0 + 1e-9);
    power[static_cast<std::size_t>(i)] =
        p.leak_power_w + p.active_power_w * std::clamp(a, 0.0, 1.0);
  }

  // Gauss-Seidel on: (gv + sum_j gl) T_i - sum_j gl T_j = P_i + gv T_amb.
  obs::Span span("thermal.steady_state");
  span.arg("pes", n);
  int iterations = 0;
  std::vector<double> temp(static_cast<std::size_t>(n), p.ambient_k);
  const int rows = fabric.rows();
  const int cols = fabric.cols();
  for (int iter = 0; iter < p.max_iterations; ++iter) {
    ++iterations;
    double max_delta = 0.0;
    for (int i = 0; i < n; ++i) {
      const Point loc = fabric.loc(i);
      double diag = gv;
      double neighbor_sum = 0.0;
      auto visit = [&](int x, int y) {
        if (x < 0 || x >= cols || y < 0 || y >= rows) return;
        diag += p.lateral_conductance;
        neighbor_sum += p.lateral_conductance *
                        temp[static_cast<std::size_t>(fabric.pe_at(
                            Point{x, y}))];
      };
      visit(loc.x - 1, loc.y);
      visit(loc.x + 1, loc.y);
      visit(loc.x, loc.y - 1);
      visit(loc.x, loc.y + 1);
      const double t_new = (power[static_cast<std::size_t>(i)] +
                            gv * p.ambient_k + neighbor_sum) /
                           diag;
      max_delta = std::max(max_delta,
                           std::abs(t_new - temp[static_cast<std::size_t>(i)]));
      temp[static_cast<std::size_t>(i)] = t_new;
    }
    if (max_delta < p.tolerance_k) break;
  }
  span.arg("iterations", iterations);
  return temp;
}

std::vector<double> transient_temperature(const Fabric& fabric,
                                          const std::vector<double>& activity,
                                          double duration_s,
                                          const ThermalParams& p,
                                          const TransientOptions& t,
                                          const std::vector<double>* initial) {
  const int n = fabric.num_pes();
  CGRAF_ASSERT(static_cast<int>(activity.size()) == n);
  CGRAF_ASSERT(duration_s >= 0.0);
  CGRAF_ASSERT(t.capacitance_j_per_k > 0.0);
  obs::Span span("thermal.transient");
  span.arg("pes", n).arg("duration_s", duration_s);

  const double gv = 1.0 / p.vertical_resistance;
  // Explicit Euler stability: dt < C / (gv + 4 gl); clamp defensively.
  const double g_max = gv + 4.0 * p.lateral_conductance;
  const double dt = std::min(t.time_step_s, 0.5 * t.capacitance_j_per_k / g_max);
  CGRAF_ASSERT(dt > 0.0);

  std::vector<double> power(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    power[static_cast<std::size_t>(i)] =
        p.leak_power_w +
        p.active_power_w *
            std::clamp(activity[static_cast<std::size_t>(i)], 0.0, 1.0);
  }

  std::vector<double> temp =
      initial != nullptr ? *initial
                         : std::vector<double>(static_cast<std::size_t>(n),
                                               p.ambient_k);
  CGRAF_ASSERT(static_cast<int>(temp.size()) == n);
  std::vector<double> next(static_cast<std::size_t>(n));

  const int rows = fabric.rows();
  const int cols = fabric.cols();
  double remaining = duration_s;
  while (remaining > 0.0) {
    const double step = std::min(dt, remaining);
    remaining -= step;
    for (int i = 0; i < n; ++i) {
      const Point loc = fabric.loc(i);
      double flow = power[static_cast<std::size_t>(i)] +
                    gv * (p.ambient_k - temp[static_cast<std::size_t>(i)]);
      auto visit = [&](int x, int y) {
        if (x < 0 || x >= cols || y < 0 || y >= rows) return;
        flow += p.lateral_conductance *
                (temp[static_cast<std::size_t>(fabric.pe_at(Point{x, y}))] -
                 temp[static_cast<std::size_t>(i)]);
      };
      visit(loc.x - 1, loc.y);
      visit(loc.x + 1, loc.y);
      visit(loc.x, loc.y - 1);
      visit(loc.x, loc.y + 1);
      next[static_cast<std::size_t>(i)] =
          temp[static_cast<std::size_t>(i)] +
          step * flow / t.capacitance_j_per_k;
    }
    temp.swap(next);
  }
  return temp;
}

}  // namespace cgraf::thermal
