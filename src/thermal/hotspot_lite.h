// HotSpot-style compact steady-state thermal model of the PE grid.
//
// The paper feeds per-PE stress-time maps into HotSpot 6.0 and uses the
// resulting per-PE temperatures in the NBTI MTTF model. This module
// implements the block-level core of that flow: each PE is one thermal node
// with a vertical conductance to ambient (package/heat-sink path collapsed
// into one resistance) and lateral conductances to its 4-neighbours
// (silicon spreading). Power is leakage plus an activity-proportional
// dynamic term, activity being the PE's average duty cycle over a full
// context round — exactly the quantity the stress map provides.
#pragma once

#include <vector>

#include "cgrra/fabric.h"

namespace cgraf::thermal {

struct ThermalParams {
  double ambient_k = 318.15;        // 45 C board environment
  double leak_power_w = 0.004;      // static power per PE
  double active_power_w = 0.080;    // dynamic power per PE at 100% duty
  double vertical_resistance = 60;  // K/W, PE junction -> ambient
  double lateral_conductance = 0.08;  // W/K between adjacent PEs
  double tolerance_k = 1e-7;        // Gauss-Seidel convergence threshold
  int max_iterations = 20000;
};

// Solves the steady-state grid for the given per-PE activity (duty cycle in
// [0, 1], size = fabric.num_pes()). Returns per-PE temperature in Kelvin.
std::vector<double> steady_state_temperature(const Fabric& fabric,
                                             const std::vector<double>& activity,
                                             const ThermalParams& params = {});

// --- Transient extension -------------------------------------------------
//
// HotSpot's transient mode: each PE node gets a thermal capacitance and the
// grid is integrated with explicit Euler, C dT/dt = P - G T. The slowest
// thermal time constant (C * R_vertical = 9 s with the defaults, for the
// spatially-uniform mode) is many orders of magnitude
// above the nanosecond context period, which is exactly why the MTTF flow
// may use the steady-state solve on *average* activity; the transient
// solver is for power-state transitions (reconfiguration to a different
// application, duty-cycling) and for validating that separation.

struct TransientOptions {
  double capacitance_j_per_k = 0.15;  // per-PE lumped thermal capacitance
  double time_step_s = 2e-3;          // explicit-Euler step
};

// Integrates the grid for `duration_s` under constant per-PE activity,
// starting from `initial` (ambient everywhere when null). Returns the
// final per-PE temperatures.
std::vector<double> transient_temperature(
    const Fabric& fabric, const std::vector<double>& activity,
    double duration_s, const ThermalParams& params = {},
    const TransientOptions& transient = {},
    const std::vector<double>* initial = nullptr);

}  // namespace cgraf::thermal
