// Reproduces Fig. 2(a): accumulated stress-time maps before and after
// aging-aware re-mapping.
//
// Part 1 recreates the paper's 4-context toy exactly: 4 contexts on a 4x4
// fabric, each using a handful of PEs packed by the aging-unaware flow into
// the same corner, so some PEs accumulate stress in every context; the
// re-mapped floorplan levels the accumulation. Part 2 shows the same maps
// for a real suite benchmark.
#include <cstdio>

#include "cgrra/stress.h"
#include "core/report.h"
#include "util/ascii.h"

namespace {

void print_maps(const cgraf::Design& design, const cgraf::Floorplan& before,
                const cgraf::Floorplan& after) {
  const auto s0 = compute_stress(design, before);
  const auto s1 = compute_stress(design, after);
  const double scale = s0.max_accumulated();
  std::printf("accumulated stress, aging-unaware (max %.3f):\n%s\n",
              s0.max_accumulated(),
              cgraf::render_heat_map(s0.accumulated, design.fabric.rows(),
                              design.fabric.cols(), scale)
                  .c_str());
  std::printf("accumulated stress, aging-aware (max %.3f, same scale):\n%s\n",
              s1.max_accumulated(),
              cgraf::render_heat_map(s1.accumulated, design.fabric.rows(),
                              design.fabric.cols(), scale)
                  .c_str());
}

}  // namespace

int main() {
  std::printf("== Fig. 2(a): stress-time balance ==\n\n");

  {
    std::printf("-- toy example (4 contexts, 4x4 fabric) --\n");
    cgraf::workloads::BenchmarkSpec spec;
    spec.name = "toy";
    spec.contexts = 4;
    spec.fabric_dim = 4;
    spec.usage = 0.30;
    spec.seed = 2020;
    const auto bench = cgraf::workloads::generate_benchmark(spec);
    cgraf::core::RemapOptions opts;
    const auto remap =
        aging_aware_remap(bench.design, bench.baseline, opts);
    print_maps(bench.design, bench.baseline, remap.floorplan);
    std::printf("max accumulated stress: %.3f -> %.3f (%.2fx reduction)\n\n",
                remap.st_max_before, remap.st_max_after,
                remap.st_max_before / remap.st_max_after);
  }

  {
    std::printf("-- suite benchmark B14 (8 contexts, 6x6, medium usage) --\n");
    const auto specs = cgraf::workloads::table1_specs(false);
    const auto bench = cgraf::workloads::generate_benchmark(specs[13]);
    cgraf::core::RemapOptions opts;
    const auto remap =
        aging_aware_remap(bench.design, bench.baseline, opts);
    print_maps(bench.design, bench.baseline, remap.floorplan);
    std::printf("max accumulated stress: %.3f -> %.3f; MTTF gain %.2fx\n",
                remap.st_max_before, remap.st_max_after, remap.mttf_gain);
  }
  return 0;
}
