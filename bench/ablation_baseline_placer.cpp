// Ablation: how much of the MTTF gain comes from undoing the baseline
// placer's deterministic corner packing?
//
// The paper's premise is that the commercial aging-unaware flow minimizes
// per-context bounding boxes and prefers low-index resources, piling stress
// onto the same PEs in every context. This bench re-places the same
// netlists with that bias progressively removed and reports the baseline
// stress concentration (ST_max / ST_avg) and the re-mapper's achievable
// gain on top of each baseline.
#include <cstdio>

#include "cgrra/stress.h"
#include "core/remapper.h"
#include "timing/sta.h"
#include "util/ascii.h"
#include "workloads/suite.h"

using namespace cgraf;

namespace {

struct Variant {
  const char* name;
  double w_bbox;
  double w_anchor;
};

}  // namespace

int main() {
  std::printf("== Ablation: aging-unaware baseline placer bias ==\n\n");
  const Variant variants[] = {
      {"packing + anchor (default)", 3.0, 0.4},
      {"packing only", 3.0, 0.0},
      {"wirelength only", 0.0, 0.0},
  };

  AsciiTable table({"bench", "baseline variant", "cpd (ns)",
                    "ST max/avg", "MTTF x (rotate)"});
  const auto specs = workloads::table1_specs(false);
  for (const int idx : {1, 10, 13}) {  // B2 (low), B11 (med), B14 (med)
    const auto& spec = specs[static_cast<std::size_t>(idx)];
    Rng rng(spec.seed);
    Fabric fabric(spec.fabric_dim, spec.fabric_dim);
    std::vector<int> per_context(static_cast<std::size_t>(spec.contexts));
    for (int c = 0; c < spec.contexts; ++c) {
      per_context[static_cast<std::size_t>(c)] = std::max(
          1, static_cast<int>(spec.usage * fabric.num_pes()));
    }
    const Design design = workloads::generate_multicontext_design(
        fabric, spec.contexts, per_context, rng);

    for (const Variant& v : variants) {
      hls::PlacerOptions popts;
      popts.seed = spec.seed ^ 0x9e3779b97f4a7c15ULL;
      popts.w_bbox = v.w_bbox;
      popts.w_anchor = v.w_anchor;
      const Floorplan baseline = place_baseline(design, popts);
      const StressMap stress = compute_stress(design, baseline);
      const auto sta = timing::run_sta(design, baseline);

      core::RemapOptions opts;
      opts.mode = core::RemapMode::kRotate;
      opts.seed = spec.seed ^ 0x0dd5ULL;
      const auto remap = aging_aware_remap(design, baseline, opts);

      table.add_row({spec.name, v.name, fmt_double(sta.cpd_ns, 2),
                     fmt_double(stress.max_accumulated() /
                                    std::max(1e-12, stress.avg_accumulated()),
                                2),
                     fmt_double(remap.mttf_gain, 2)});
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n\n%s\n", table.render().c_str());
  std::printf("expectation: the anchor/packing variants concentrate stress\n"
              "(higher ST max/avg) and therefore leave the re-mapper more to\n"
              "recover; a wirelength-only baseline is already flatter.\n");
  return 0;
}
