// Reproduces Fig. 2(b): threshold-voltage shift vs. operation time for the
// original (aging-unaware) and re-mapped floorplans. The curve tracks the
// worst (first-failing) PE of each floorplan; the fabric fails when the
// shift reaches 10% of Vth0. The re-mapped curve has the lower slope and
// therefore the larger MTTF, exactly as in the paper's figure.
#include <cstdio>

#include "aging/nbti.h"
#include "core/report.h"
#include "util/ascii.h"

int main() {
  std::printf("== Fig. 2(b): Vth shift vs. time ==\n\n");
  const auto specs = cgraf::workloads::table1_specs(false);
  const auto bench = cgraf::workloads::generate_benchmark(specs[13]);  // B14
  cgraf::core::RemapOptions opts;
  const auto remap = aging_aware_remap(bench.design, bench.baseline, opts);

  const cgraf::aging::NbtiParams nbti = opts.nbti;
  const auto& before = remap.mttf_before;
  const auto& after = remap.mttf_after;
  const double fail_v = nbti.fail_shift_frac * nbti.vth0_v;

  std::printf("benchmark %s: MTTF %.2f y -> %.2f y (gain %.2fx)\n",
              bench.spec.name.c_str(), before.mttf_years, after.mttf_years,
              remap.mttf_gain);
  std::printf("worst PE: sr %.3f @ %.1f K  ->  sr %.3f @ %.1f K\n",
              before.limiting_sr, before.limiting_temp_k, after.limiting_sr,
              after.limiting_temp_k);
  std::printf("failure threshold: dVth = %.0f mV (%.0f%% of Vth0)\n\n",
              fail_v * 1e3, nbti.fail_shift_frac * 100);

  cgraf::AsciiTable table({"time (years)", "dVth orig (mV)",
                           "dVth remap (mV)", "status"});
  const double horizon = 2.5 * after.mttf_years;
  const int kPoints = 16;
  for (int i = 1; i <= kPoints; ++i) {
    const double t_years = horizon * i / kPoints;
    const double t_s = t_years * cgraf::aging::kSecondsPerYear;
    const double v0 = cgraf::aging::vth_shift_v(
        nbti, before.limiting_sr, before.limiting_temp_k, t_s);
    const double v1 = cgraf::aging::vth_shift_v(
        nbti, after.limiting_sr, after.limiting_temp_k, t_s);
    const char* status = v0 >= fail_v && v1 >= fail_v ? "both failed"
                         : v0 >= fail_v              ? "orig failed"
                                                     : "alive";
    table.add_row({cgraf::fmt_double(t_years, 2), cgraf::fmt_double(v0 * 1e3, 1),
                   cgraf::fmt_double(v1 * 1e3, 1), status});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("MTTF markers: orig fails at %.2f y, remap fails at %.2f y\n",
              before.mttf_years, after.mttf_years);
  return 0;
}
