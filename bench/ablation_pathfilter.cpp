// Ablation of Step 2.2's path filter (the paper monitors paths within 20%
// of the CPD and relies on Algorithm 1's STA re-check for the rest).
//
// Sweeps the margin: a 0% margin monitors only the critical paths (fast,
// but the re-check loop must catch more regressions through unmonitored
// paths), while larger margins monitor more paths (bigger models, fewer
// surprises). Reports monitored-path counts, model rows, outer iterations,
// runtime, the final CPD check, and the achieved gain.
#include <cstdio>

#include "core/report.h"
#include "util/ascii.h"

using namespace cgraf;

int main() {
  std::printf("== Ablation: monitored-path margin (Step 2.2) ==\n\n");
  const auto specs = workloads::table1_specs(false);
  const auto bench = workloads::generate_benchmark(specs[13]);  // B14
  std::printf("benchmark %s: C%dF%d, %d ops\n\n", bench.spec.name.c_str(),
              bench.spec.contexts, bench.spec.fabric_dim, bench.total_ops);

  AsciiTable table({"margin", "monitored paths", "outer iters", "CPD held",
                    "MTTF x", "seconds"});
  for (const double margin : {0.0, 0.05, 0.10, 0.20, 0.30}) {
    core::RemapOptions opts;
    opts.mode = core::RemapMode::kRotate;
    opts.path_margin = margin;
    const auto r = aging_aware_remap(bench.design, bench.baseline, opts);
    table.add_row({fmt_double(margin * 100, 0) + "%",
                   std::to_string(r.num_monitored_paths),
                   std::to_string(r.outer_iterations),
                   r.cpd_after_ns <= r.cpd_before_ns + 1e-9 ? "yes" : "NO",
                   fmt_double(r.mttf_gain, 2), fmt_double(r.seconds, 1)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.render().c_str());
  std::printf("note: every row must keep the CPD (Algorithm 1's re-check "
              "guarantees it\nregardless of the margin); smaller margins "
              "trade model size for re-check loops.\n");
  return 0;
}
