// Micro-benchmarks of the analysis substrates: STA, monitored-path
// enumeration, stress maps, the HotSpot-lite thermal solve, and the
// baseline placer.
#include <benchmark/benchmark.h>

#include "aging/mttf.h"
#include "cgrra/stress.h"
#include "hls/placer.h"
#include "thermal/hotspot_lite.h"
#include "timing/paths.h"
#include "workloads/suite.h"

namespace {

using namespace cgraf;

workloads::GeneratedBenchmark make_bench(int contexts, int dim,
                                         double usage) {
  workloads::BenchmarkSpec spec;
  spec.name = "micro";
  spec.contexts = contexts;
  spec.fabric_dim = dim;
  spec.usage = usage;
  spec.seed = 99;
  return workloads::generate_benchmark(spec);
}

void BM_Sta(benchmark::State& state) {
  const auto bench = make_bench(8, static_cast<int>(state.range(0)), 0.5);
  const timing::CombGraph graph(bench.design);
  for (auto _ : state) {
    const auto sta = run_sta(graph, bench.baseline);
    benchmark::DoNotOptimize(sta.cpd_ns);
  }
  state.counters["ops"] = bench.total_ops;
}
BENCHMARK(BM_Sta)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_MonitoredPaths(benchmark::State& state) {
  const auto bench = make_bench(8, 8, 0.6);
  const timing::CombGraph graph(bench.design);
  for (auto _ : state) {
    const auto paths = timing::monitored_paths(graph, bench.baseline);
    benchmark::DoNotOptimize(paths.size());
  }
}
BENCHMARK(BM_MonitoredPaths)->Unit(benchmark::kMicrosecond);

void BM_StressMap(benchmark::State& state) {
  const auto bench = make_bench(16, 8, 0.6);
  for (auto _ : state) {
    const auto map = compute_stress(bench.design, bench.baseline);
    benchmark::DoNotOptimize(map.accumulated.data());
  }
}
BENCHMARK(BM_StressMap)->Unit(benchmark::kMicrosecond);

void BM_ThermalSolve(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const Fabric fabric(dim, dim);
  std::vector<double> activity(static_cast<size_t>(fabric.num_pes()));
  for (int i = 0; i < fabric.num_pes(); ++i)
    activity[static_cast<size_t>(i)] = (i * 37 % 100) / 100.0;
  for (auto _ : state) {
    const auto t = thermal::steady_state_temperature(fabric, activity);
    benchmark::DoNotOptimize(t.data());
  }
}
BENCHMARK(BM_ThermalSolve)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);

void BM_MttfReport(benchmark::State& state) {
  const auto bench = make_bench(8, 6, 0.5);
  for (auto _ : state) {
    const auto report = aging::compute_mttf(bench.design, bench.baseline);
    benchmark::DoNotOptimize(report.mttf_seconds);
  }
}
BENCHMARK(BM_MttfReport)->Unit(benchmark::kMicrosecond);

void BM_BaselinePlacer(benchmark::State& state) {
  const auto bench = make_bench(4, static_cast<int>(state.range(0)), 0.5);
  hls::PlacerOptions opts;
  opts.seed = 5;
  for (auto _ : state) {
    const Floorplan fp = place_baseline(bench.design, opts);
    benchmark::DoNotOptimize(fp.op_to_pe.data());
  }
}
BENCHMARK(BM_BaselinePlacer)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
