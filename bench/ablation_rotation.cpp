// Ablation of Step 2.1 (critical-path rotation).
//
// Table I already shows Rotate >= Freeze; this bench isolates *why* by
// comparing, on the high-usage benchmarks (where frozen critical paths bite
// hardest):
//   - Freeze        : no rotation (orientation fixed to identity),
//   - Rotate(1)     : a single random diversity-rule draw (no restarts),
//   - Rotate(12)    : the default overlap-minimizing multi-restart draw.
// It also reports the stress-weighted frozen-PE overlap that the rotation
// step minimizes, demonstrating the mechanism (lower overlap -> lower
// reachable st_target -> higher MTTF gain).
#include <cstdio>

#include "core/report.h"
#include "timing/paths.h"
#include "util/ascii.h"

using namespace cgraf;

int main() {
  std::printf("== Ablation: critical-path rotation (Step 2.1) ==\n\n");
  AsciiTable table({"bench", "config", "frozen ops", "overlap freeze",
                    "overlap rotate", "Freeze x", "Rotate(1) x",
                    "Rotate(12) x"});

  for (const auto& spec : workloads::table1_specs(false)) {
    if (spec.band != workloads::UsageBand::kHigh) continue;
    if (spec.fabric_dim > 6) continue;  // keep the ablation quick
    const auto bench = workloads::generate_benchmark(spec);

    // Frozen groups and their overlap under identity vs planned rotation.
    const timing::CombGraph graph(bench.design);
    std::vector<std::vector<int>> frozen_by_context(
        static_cast<std::size_t>(bench.design.num_contexts));
    std::vector<char> seen(static_cast<std::size_t>(bench.design.num_ops()),
                           0);
    int frozen_total = 0;
    for (int c = 0; c < bench.design.num_contexts; ++c) {
      for (const auto& p :
           timing::critical_paths(graph, bench.baseline, c, 8)) {
        for (const int op : p.ops) {
          if (!seen[static_cast<std::size_t>(op)]) {
            seen[static_cast<std::size_t>(op)] = 1;
            frozen_by_context[static_cast<std::size_t>(c)].push_back(op);
            ++frozen_total;
          }
        }
      }
    }
    auto overlap_of = [&](const Floorplan& fp) {
      std::vector<double> pe(static_cast<std::size_t>(
                                 bench.design.fabric.num_pes()),
                             0.0);
      for (const auto& group : frozen_by_context)
        for (const int op : group)
          pe[static_cast<std::size_t>(fp.pe_of(op))] += op_stress(
              bench.design.ops[static_cast<std::size_t>(op)],
              bench.design.fabric);
      double cost = 0.0;
      for (const double s : pe) cost += s * s;
      return cost;
    };
    core::RotationOptions ropts;
    ropts.seed = spec.seed;
    const auto rot =
        rotate_critical_paths(bench.design, bench.baseline, frozen_by_context,
                              ropts);

    core::RemapOptions freeze;
    freeze.mode = core::RemapMode::kFreeze;
    const auto r_freeze = aging_aware_remap(bench.design, bench.baseline,
                                            freeze);
    core::RemapOptions rot1;
    rot1.mode = core::RemapMode::kRotate;
    rot1.rotation_restarts = 1;
    rot1.rotation_retries = 0;
    const auto r_rot1 = aging_aware_remap(bench.design, bench.baseline, rot1);
    core::RemapOptions rot12;
    rot12.mode = core::RemapMode::kRotate;
    const auto r_rot12 = aging_aware_remap(bench.design, bench.baseline,
                                           rot12);

    table.add_row({spec.name,
                   "C" + std::to_string(spec.contexts) + "F" +
                       std::to_string(spec.fabric_dim),
                   std::to_string(frozen_total),
                   fmt_double(overlap_of(bench.baseline), 2),
                   fmt_double(rot.overlap_cost, 2),
                   fmt_double(r_freeze.mttf_gain, 2),
                   fmt_double(r_rot1.mttf_gain, 2),
                   fmt_double(r_rot12.mttf_gain, 2)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.render().c_str());
  return 0;
}
