// Micro-benchmarks of the MILP substrate: basis factorization, FTRAN/BTRAN,
// LP solves on assignment-shaped models, and small branch & bound runs.
//
// Besides the google-benchmark timing table, every case emits one
// machine-readable JSON line on stdout (prefix `CGRAF_BENCH_JSON `) with the
// wall seconds, LP iteration count, node count, thread count and the
// solver's per-stage counters, so a BENCH_*.json trajectory can be tracked
// across commits.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "milp/branch_and_bound.h"
#include "milp/lu.h"
#include "milp/model.h"
#include "milp/simplex.h"
#include "obs/bench_compare.h"
#include "obs/build_info.h"
#include "obs/json_writer.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace {

using namespace cgraf;
using namespace cgraf::milp;

// Set by main() from the CGRAF_TRACE env var; when tracing, each bench JSON
// line carries the trace path so the trajectory links back to the profile.
const char* g_trace_path = nullptr;

// Provenance stamp on every CGRAF_BENCH_JSON line: schema version, git SHA,
// compiler and host thread count, so standalone lines (outside a
// cgraf_bench-run document) remain self-describing and comparable.
void append_meta_fields(obs::JsonWriter& w) {
  w.field("schema_version", obs::kBenchJsonSchemaVersion);
  obs::append_build_info_fields(w);
}

void append_stage_fields(obs::JsonWriter& w, const LpStageStats& s) {
  w.field("pricing_seconds", s.pricing_seconds)
      .field("ftran_seconds", s.ftran_seconds)
      .field("btran_seconds", s.btran_seconds)
      .field("factor_seconds", s.factor_seconds)
      .field("dse_seconds", s.dse_seconds)
      .field("incremental_updates", s.incremental_updates)
      .field("full_refreshes", s.full_refreshes)
      .field("bucket_rebuilds", s.bucket_rebuilds)
      .field("dual_iterations", s.dual_iterations)
      .field("bound_flips", s.bound_flips)
      .field("refactorizations", s.refactorizations)
      .field("steepest_edge_resets", s.steepest_edge_resets)
      .field("dual_fallbacks", s.dual_fallbacks);
}

void emit_lp_json(const char* name, long arg, const LpResult& r,
                  Pricing pricing) {
  obs::JsonWriter w;
  w.begin_object()
      .field("case", name)
      .field("arg", arg)
      .field("pricing",
             pricing == Pricing::kCandidateList ? "candidate" : "full")
      .field("wall_seconds", r.seconds)
      .field("lp_iterations", r.iterations)
      .field("nodes", 0L)
      .field("threads", 1L);
  append_stage_fields(w, r.stats);
  append_meta_fields(w);
  if (g_trace_path != nullptr) w.field("trace", g_trace_path);
  w.end_object();
  std::printf("CGRAF_BENCH_JSON %s\n", w.str().c_str());
}

void emit_mip_json(const char* name, long arg, const MipResult& r) {
  obs::JsonWriter w;
  w.begin_object()
      .field("case", name)
      .field("arg", arg)
      .field("wall_seconds", r.seconds)
      .field("lp_iterations", r.lp_iterations)
      .field("nodes", r.nodes)
      .field("threads", r.threads_used);
  append_stage_fields(w, r.lp_stats);
  append_meta_fields(w);
  if (g_trace_path != nullptr) w.field("trace", g_trace_path);
  w.end_object();
  std::printf("CGRAF_BENCH_JSON %s\n", w.str().c_str());
}

// ops x pes assignment feasibility model with stress rows (the shape the
// floorplanner generates).
Model assignment_model(int ops, int pes, int contexts, std::uint64_t seed,
                       bool integer) {
  Rng rng(seed);
  Model m;
  std::vector<std::vector<int>> vars(static_cast<size_t>(ops));
  std::vector<double> stress(static_cast<size_t>(ops));
  for (int j = 0; j < ops; ++j) {
    stress[static_cast<size_t>(j)] = 0.2 + 0.6 * rng.next_double();
    for (int k = 0; k < pes; ++k)
      vars[static_cast<size_t>(j)].push_back(
          integer ? m.add_binary(rng.next_double())
                  : m.add_continuous(0, 1, rng.next_double()));
    std::vector<std::pair<int, double>> row;
    for (const int v : vars[static_cast<size_t>(j)]) row.emplace_back(v, 1.0);
    m.add_eq(std::move(row), 1.0);
  }
  const int per_ctx = ops / contexts;
  for (int c = 0; c < contexts; ++c) {
    for (int k = 0; k < pes; ++k) {
      std::vector<std::pair<int, double>> row;
      for (int j = c * per_ctx; j < (c + 1) * per_ctx && j < ops; ++j)
        row.emplace_back(vars[static_cast<size_t>(j)][static_cast<size_t>(k)],
                         1.0);
      if (row.size() > 1) m.add_le(std::move(row), 1.0);
    }
  }
  double total = 0.0;
  for (const double s : stress) total += s;
  // The per-PE cap must admit at least one whole op, or tiny instances are
  // trivially infeasible.
  const double cap = std::max(1.3 * total / pes, 0.85);
  for (int k = 0; k < pes; ++k) {
    std::vector<std::pair<int, double>> row;
    for (int j = 0; j < ops; ++j)
      row.emplace_back(vars[static_cast<size_t>(j)][static_cast<size_t>(k)],
                       stress[static_cast<size_t>(j)]);
    m.add_le(std::move(row), cap);
  }
  return m;
}

// A realistic, guaranteed-factorizable basis: the optimal basis of the
// model's LP relaxation.
std::vector<int> optimal_basis(const Model& m) {
  const LpResult lp = solve_lp(m);
  std::vector<int> basis;
  for (int j = 0; j < static_cast<int>(lp.basis.size()); ++j)
    if (lp.basis[static_cast<size_t>(j)] == ColStatus::kBasic)
      basis.push_back(j);
  return basis;
}

// range(0) = ops, range(1) = pricing scheme (0 full, 1 candidate list).
void BM_LpAssignment(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  const Pricing pricing =
      state.range(1) == 0 ? Pricing::kFullDantzig : Pricing::kCandidateList;
  const Model m = assignment_model(ops, 36, 4, 42, /*integer=*/false);
  LpOptions opts;
  opts.pricing = pricing;
  for (auto _ : state) {
    const LpResult r = solve_lp(m, opts);
    benchmark::DoNotOptimize(r.obj);
    if (r.status != SolveStatus::kOptimal) state.SkipWithError("LP failed");
  }
  state.counters["vars"] = m.num_vars();
  state.counters["rows"] = m.num_constraints();
  const LpResult probe = solve_lp(m, opts);
  state.counters["lp_iters"] = static_cast<double>(probe.iterations);
  emit_lp_json("lp_assignment", state.range(0), probe, pricing);
}
BENCHMARK(BM_LpAssignment)
    ->Args({24, 0})->Args({24, 1})
    ->Args({48, 0})->Args({48, 1})
    ->Args({96, 0})->Args({96, 1})
    ->Unit(benchmark::kMillisecond);

// range(0) = ops, range(1) = branch & bound worker threads.
void BM_MilpAssignment(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  const Model m = assignment_model(ops, 16, 4, 7, /*integer=*/true);
  MipOptions opts;
  opts.stop_at_first_incumbent = true;
  opts.num_threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    const MipResult r = solve_milp(m, opts);
    benchmark::DoNotOptimize(r.nodes);
    if (!r.has_solution()) state.SkipWithError("MILP failed");
  }
  const MipResult probe = solve_milp(m, opts);
  state.counters["nodes"] = static_cast<double>(probe.nodes);
  emit_mip_json("milp_assignment", state.range(0), probe);
}
BENCHMARK(BM_MilpAssignment)
    ->Args({16, 1})->Args({16, 2})->Args({16, 4})
    ->Args({24, 1})->Args({24, 2})->Args({24, 4})
    ->Unit(benchmark::kMillisecond);

// A binary-search-shaped probe sequence: one engine, the per-PE stress-cap
// rows' RHS re-ranged between solves, each solve warm-started from the
// previous basis. range(0) = ops, range(1) = warm (1) or cold (0) — the
// cold variant re-solves from the slack basis so the pair measures exactly
// what basis chaining buys on the floorplanner's probe loops.
void BM_LpRhsRampProbes(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  const bool warm = state.range(1) == 1;
  const int pes = 36;
  const Model m = assignment_model(ops, pes, 4, 42, /*integer=*/false);
  const int rows = m.num_constraints();
  // assignment_model appends the per-PE stress caps last.
  const double cap0 = m.constraint(rows - 1).ub;
  constexpr int kProbes = 8;
  int warm_hits = 0;
  long iters = 0;
  double probe_seconds[kProbes] = {};
  for (auto _ : state) {
    SimplexEngine engine(m);
    std::vector<ColStatus> basis;
    warm_hits = 0;
    iters = 0;
    for (int p = 0; p < kProbes; ++p) {
      // Tighten the cap each probe, like the ST_target bisection closing in.
      const double cap = cap0 * (1.0 - 0.03 * p);
      for (int k = 0; k < pes; ++k)
        engine.set_row_bounds(rows - pes + k, -kInf, cap);
      const LpResult r =
          engine.solve(warm && !basis.empty() ? &basis : nullptr);
      if (r.status != SolveStatus::kOptimal &&
          r.status != SolveStatus::kInfeasible) {
        state.SkipWithError("probe LP failed");
        break;
      }
      if (r.warm_used) ++warm_hits;
      iters += r.iterations;
      probe_seconds[p] = r.seconds;
      if (!r.basis.empty()) basis = r.basis;
      benchmark::DoNotOptimize(r.obj);
    }
  }
  state.counters["probes"] = kProbes;
  state.counters["warm_hits"] = warm_hits;
  state.counters["lp_iters"] = static_cast<double>(iters);
  {
    double total = 0.0, mx = 0.0;
    for (const double s : probe_seconds) {
      total += s;
      mx = std::max(mx, s);
    }
    obs::JsonWriter w;
    w.begin_object()
        .field("case", "lp_rhs_ramp")
        .field("arg", static_cast<long>(state.range(0)))
        .field("warm", warm)
        .field("probes", static_cast<long>(kProbes))
        .field("warm_hits", static_cast<long>(warm_hits))
        .field("wall_seconds", total)
        .field("probe_max_s", mx)
        .field("lp_iterations", iters)
        .field("nodes", 0L)
        .field("threads", 1L);
    append_meta_fields(w);
    if (g_trace_path != nullptr) w.field("trace", g_trace_path);
    w.end_object();
    std::printf("CGRAF_BENCH_JSON %s\n", w.str().c_str());
  }
}
BENCHMARK(BM_LpRhsRampProbes)
    ->Args({48, 0})->Args({48, 1})
    ->Args({96, 0})->Args({96, 1})
    ->Unit(benchmark::kMillisecond);

// The branch & bound child shape: each re-solve differs from the shared
// parent by exactly one tightened variable bound and starts from the
// parent's optimal basis — the case the dual simplex loop exists for.
// range(0) = ops, range(1) = algorithm (0 warm primal, 1 auto/dual). The
// pair of JSON lines is the dual-vs-primal re-solve comparison tracked by
// the bench trajectory.
void BM_LpChildResolve(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  const bool dual = state.range(1) == 1;
  const Model m = assignment_model(ops, 36, 4, 42, /*integer=*/false);
  LpOptions opts;
  opts.algorithm = dual ? LpAlgorithm::kAutoWarm : LpAlgorithm::kPrimal;
  SimplexEngine engine(m, opts);
  const LpResult root = engine.solve();
  if (root.status != SolveStatus::kOptimal) {
    state.SkipWithError("root LP failed");
    return;
  }
  // Branch on basic (fractional-looking) columns so every child does real
  // pivoting work instead of confirming an unchanged optimum.
  std::vector<int> branch_vars;
  for (int j = 0;
       j < engine.num_structural() && static_cast<int>(branch_vars.size()) < 16;
       ++j) {
    if (root.basis[static_cast<size_t>(j)] == ColStatus::kBasic)
      branch_vars.push_back(j);
  }
  const std::vector<double>& lb = engine.model_lb();
  std::vector<double> ub = engine.model_ub();
  long iters = 0, dual_iters = 0;
  double wall = 0.0, obj_sum = 0.0;
  LpStageStats stage;
  for (auto _ : state) {
    iters = 0;
    dual_iters = 0;
    wall = 0.0;
    obj_sum = 0.0;
    stage = LpStageStats{};
    for (const int v : branch_vars) {
      const double saved = ub[static_cast<size_t>(v)];
      ub[static_cast<size_t>(v)] = 0.0;  // the "fix to 0" child
      const LpResult r = engine.solve(lb, ub, &root.basis);
      ub[static_cast<size_t>(v)] = saved;
      if (r.status != SolveStatus::kOptimal &&
          r.status != SolveStatus::kInfeasible) {
        state.SkipWithError("child LP failed");
        break;
      }
      iters += r.iterations;
      dual_iters += r.stats.dual_iterations;
      wall += r.seconds;
      if (r.status == SolveStatus::kOptimal) obj_sum += r.obj;
      stage.add(r.stats);
      benchmark::DoNotOptimize(r.obj);
    }
  }
  state.counters["children"] = static_cast<double>(branch_vars.size());
  state.counters["lp_iters"] = static_cast<double>(iters);
  state.counters["dual_iters"] = static_cast<double>(dual_iters);
  {
    obs::JsonWriter w;
    w.begin_object()
        .field("case", "lp_child_resolve")
        .field("arg", static_cast<long>(state.range(0)))
        .field("algorithm", dual ? "auto" : "primal")
        .field("children", static_cast<long>(branch_vars.size()))
        .field("wall_seconds", wall)
        .field("lp_iterations", iters)
        // Bit-comparable across the two algorithm variants: the dual loop's
        // results are certified by the primal pricing pass, so this sum must
        // match between the primal and auto JSON lines.
        .field("objective_sum", obj_sum)
        .field("nodes", 0L)
        .field("threads", 1L);
    append_stage_fields(w, stage);
    append_meta_fields(w);
    if (g_trace_path != nullptr) w.field("trace", g_trace_path);
    w.end_object();
    std::printf("CGRAF_BENCH_JSON %s\n", w.str().c_str());
  }
}
BENCHMARK(BM_LpChildResolve)
    ->Args({48, 0})->Args({48, 1})
    ->Args({96, 0})->Args({96, 1})
    ->Unit(benchmark::kMillisecond);

void BM_LuFactorize(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  const Model m = assignment_model(ops, 36, 4, 3, false);
  const CscMatrix a = build_computational_form(m);
  const std::vector<int> basis = optimal_basis(m);
  if (static_cast<int>(basis.size()) != a.rows) {
    state.SkipWithError("unexpected basis size");
    return;
  }
  BasisLu lu;
  for (auto _ : state) {
    const bool ok = lu.factorize(a, basis);
    if (!ok) state.SkipWithError("factorization failed");
    benchmark::DoNotOptimize(ok);
  }
  state.counters["dim"] = a.rows;
  state.counters["factor_nnz"] = lu.factor_nnz();
}
BENCHMARK(BM_LuFactorize)->Arg(48)->Arg(96)->Unit(benchmark::kMicrosecond);

void BM_FtranBtran(benchmark::State& state) {
  const Model m = assignment_model(96, 36, 4, 3, false);
  const CscMatrix a = build_computational_form(m);
  const std::vector<int> basis = optimal_basis(m);
  BasisLu lu;
  if (static_cast<int>(basis.size()) != a.rows || !lu.factorize(a, basis)) {
    state.SkipWithError("factorization failed");
    return;
  }
  std::vector<double> x(static_cast<size_t>(a.rows), 1.0);
  for (auto _ : state) {
    lu.ftran(x);
    lu.btran(x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_FtranBtran)->Unit(benchmark::kMicrosecond);

}  // namespace

// BENCHMARK_MAIN() expanded so tracing can wrap the runs: CGRAF_TRACE=<path>
// records every solver span fired by the benchmark bodies.
int main(int argc, char** argv) {
  // Single-threaded main() before any worker starts; no setenv anywhere.
  g_trace_path = std::getenv("CGRAF_TRACE");  // NOLINT(concurrency-mt-unsafe)
  if (g_trace_path != nullptr && *g_trace_path == '\0') g_trace_path = nullptr;
  if (g_trace_path != nullptr) obs::Tracer::global().enable();

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (g_trace_path != nullptr) {
    obs::Tracer::global().disable();
    std::string error;
    if (!obs::Tracer::global().write_json(g_trace_path, &error))
      std::fprintf(stderr, "failed to write trace: %s\n", error.c_str());
  }
  return 0;
}
