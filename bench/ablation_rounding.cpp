// Ablation of the LP-relaxation rounding strategy (Section V.B Step 1 text:
// the paper fixes variables with value > 0.95 and notes that randomized
// rounding "did not work as well").
//
// Compares, on one fixed Step-2 model at a fixed st_target:
//   - iterated dive (repo default),
//   - the paper's single threshold-fix pass + residual ILP,
//   - randomized rounding + residual ILP,
//   - null objective vs min-perturbation objective for the dive.
#include <cstdio>

#include "core/report.h"
#include "core/st_target.h"
#include "timing/paths.h"
#include "util/ascii.h"

using namespace cgraf;

int main() {
  std::printf("== Ablation: LP rounding strategy ==\n\n");
  const auto specs = workloads::table1_specs(false);
  const auto bench = workloads::generate_benchmark(specs[12]);  // B13
  const Design& design = bench.design;
  const timing::CombGraph graph(design);
  const timing::StaResult sta = run_sta(graph, bench.baseline);

  std::vector<char> frozen(static_cast<std::size_t>(design.num_ops()), 0);
  for (int c = 0; c < design.num_contexts; ++c)
    for (const auto& p : timing::critical_paths(graph, bench.baseline, c, 8))
      for (const int op : p.ops) frozen[static_cast<std::size_t>(op)] = 1;
  const auto monitored = timing::monitored_paths(graph, bench.baseline);
  const auto candidates = core::compute_candidates(
      design, bench.baseline, frozen, monitored, sta.cpd_ns);
  const core::StTargetResult st = core::find_st_target(design, bench.baseline);
  const double target = st.st_target + 0.30 * (st.st_up - st.st_target);

  auto build = [&](core::ObjectiveMode obj) {
    core::RemapModelSpec spec;
    spec.design = &design;
    spec.base = &bench.baseline;
    spec.frozen = frozen;
    spec.candidates = candidates;
    spec.st_target = target;
    spec.monitored = &monitored;
    spec.cpd_ns = sta.cpd_ns;
    spec.objective = obj;
    return build_remap_model(spec);
  };
  const core::RemapModel rm_pert = build(core::ObjectiveMode::kMinPerturbation);
  const core::RemapModel rm_null = build(core::ObjectiveMode::kNull);

  std::printf("benchmark %s, st_target=%.3f, %d binaries, %d path rows\n\n",
              bench.spec.name.c_str(), target, rm_pert.num_binary_vars,
              rm_pert.num_path_rows);

  AsciiTable table({"strategy", "status", "fixed by LP", "dive rounds",
                    "B&B nodes", "seconds"});
  auto run = [&](const char* name, const core::RemapModel& rm,
                 core::RoundingStrategy strategy) {
    core::TwoStepOptions opts;
    opts.strategy = strategy;
    opts.mip.stop_at_first_incumbent = true;
    opts.mip.max_nodes = 20000;
    opts.mip.time_limit_s = 60.0;
    const auto r = solve_two_step(rm, opts);
    table.add_row({name, milp::to_string(r.status),
                   std::to_string(r.stats.vars_fixed),
                   std::to_string(r.stats.dive_rounds),
                   std::to_string(r.stats.mip_nodes),
                   fmt_double(r.stats.lp_seconds + r.stats.mip_seconds, 2)});
    std::printf(".");
    std::fflush(stdout);
  };

  run("iterated dive (default)", rm_pert,
      core::RoundingStrategy::kIterativeDive);
  run("iterated dive, null obj", rm_null,
      core::RoundingStrategy::kIterativeDive);
  run("threshold-fix once (paper)", rm_pert,
      core::RoundingStrategy::kThresholdFixOnce);
  run("randomized rounding", rm_pert,
      core::RoundingStrategy::kRandomizedRound);
  std::printf("\n\n%s\n", table.render().c_str());
  return 0;
}
