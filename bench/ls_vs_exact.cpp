// Heuristic-vs-exact bench: quality gap on a quick Table-I subset and the
// incumbent-seeding effect on the branch & bound tree.
//
// Two row families on stdout (CGRAF_BENCH_JSON, scraped by cgraf_bench):
//
//   ls_gap_<B>:  both solvers walk the same descending stress-target ladder
//                (the protocol of tests/core/ls_quality_gap_test.cpp, with
//                bench-sized budgets); the row records each side's tightest
//                feasible target, the relative gap and the LS work counters.
//   ls_seeding:  one heterogeneous instance solved under an absolute gap
//                with and without the certified LS floorplan as the opening
//                incumbent; the row records both node counts. With a
//                best-first pool the saving is the incumbent-hunting
//                prefix, so nodes_seeded should stay well below
//                nodes_unseeded (the quick baseline pins 1 vs 15).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "cgrra/stress.h"
#include "core/local_search.h"
#include "core/probe_session.h"
#include "obs/bench_compare.h"
#include "obs/build_info.h"
#include "obs/json_writer.h"
#include "util/clock.h"
#include "util/geometry.h"
#include "workloads/suite.h"

namespace {

using namespace cgraf;

void append_meta_fields(obs::JsonWriter& w) {
  w.field("schema_version", obs::kBenchJsonSchemaVersion);
  obs::append_build_info_fields(w);
}

constexpr double kRungs[] = {1.0, 0.8, 0.62, 0.47, 0.35, 0.25, 0.18};
constexpr int kNumRungs = static_cast<int>(sizeof(kRungs) / sizeof(kRungs[0]));

std::vector<std::vector<int>> radius_candidates(const Design& design,
                                                const Floorplan& base,
                                                int radius) {
  std::vector<std::vector<int>> cand(design.ops.size());
  for (std::size_t op = 0; op < design.ops.size(); ++op) {
    const Point home = design.fabric.loc(base.pe_of(static_cast<int>(op)));
    for (int pe = 0; pe < design.fabric.num_pes(); ++pe) {
      if (manhattan(design.fabric.loc(pe), home) <= radius)
        cand[op].push_back(pe);
    }
  }
  return cand;
}

void run_gap_case(const workloads::BenchmarkSpec& bspec) {
  const double t0 = now_seconds();
  const workloads::GeneratedBenchmark bench =
      workloads::generate_benchmark(bspec);
  const StressMap base_stress = compute_stress(bench.design, bench.baseline);
  const double st_up = base_stress.max_accumulated();
  const double st_low = base_stress.avg_accumulated();

  core::RemapModelSpec spec;
  spec.design = &bench.design;
  spec.base = &bench.baseline;
  spec.frozen.assign(bench.design.ops.size(), 0);
  spec.candidates = radius_candidates(bench.design, bench.baseline, 2);

  auto rung = [&](int k) { return st_low + kRungs[k] * (st_up - st_low); };

  core::TwoStepOptions solver;
  solver.mip.stop_at_first_incumbent = true;
  solver.mip.max_nodes = 2000;
  solver.mip.time_limit_s = 5.0;
  core::ProbeSession session(spec, solver);
  double exact_target = rung(0);
  for (int k = 0; k < kNumRungs; ++k) {
    if (session.solve(rung(k)).status != milp::SolveStatus::kOptimal) break;
    exact_target = rung(k);
  }

  core::LocalSearchOptions opts;
  opts.seed = bspec.seed ^ 0x15c4ULL;
  opts.max_iters = 2000;
  opts.restarts = 3;
  double ls_target = rung(0);
  core::LocalSearchStats ls_stats;
  for (int k = 0; k < kNumRungs; ++k) {
    core::RemapModelSpec ls_spec = spec;
    ls_spec.st_target = rung(k);
    const core::LocalSearchResult r = core::local_search_remap(ls_spec, opts);
    ls_stats.add(r.stats);
    if (!r.feasible) break;
    ls_target = rung(k);
  }

  const double gap =
      std::max(0.0, ls_target - exact_target) / std::max(exact_target, 1e-12);
  obs::JsonWriter w;
  w.begin_object()
      .field("case", ("ls_gap_" + bspec.name).c_str())
      .field("total_ops", static_cast<long>(bench.total_ops))
      .field("exact_target", exact_target)
      .field("ls_target", ls_target)
      .field("gap", gap)
      .field("ls_moves_examined", ls_stats.moves_examined)
      .field("ls_moves_accepted", ls_stats.moves_accepted)
      .field("ls_oracle_calls", ls_stats.oracle_calls)
      .field("ls_start_repairs", ls_stats.start_repairs)
      .field("wall_seconds", now_seconds() - t0)
      .field("threads", 1L);
  append_meta_fields(w);
  w.end_object();
  std::printf("CGRAF_BENCH_JSON %s\n", w.str().c_str());
}

// The seeding instance of tests/core/portfolio_test.cpp: 16 mux/add ops
// packed pairwise onto a 3x3 fabric, min-perturbation objective, absolute
// gap 2 displacement units.
void run_seeding_case() {
  const double t0 = now_seconds();
  Design design{Fabric(3, 3), 2, {}, {}};
  Floorplan base;
  for (int i = 0; i < 16; ++i) {
    Operation op;
    op.id = i;
    op.kind = (i % 4) < 2 ? OpKind::kMux : OpKind::kAdd;
    op.context = i % 2;
    design.ops.push_back(op);
    base.op_to_pe.push_back(i / 2);
  }
  core::RemapModelSpec spec;
  spec.design = &design;
  spec.base = &base;
  spec.frozen.assign(design.ops.size(), 0);
  spec.candidates.assign(design.ops.size(), {});
  for (auto& c : spec.candidates)
    for (int pe = 0; pe < design.fabric.num_pes(); ++pe) c.push_back(pe);
  spec.st_target = 3.14 / 5.0 + 0.87 / 5.0 + 1e-6;

  const core::RemapModel rm = core::build_remap_model(spec);
  milp::MipOptions mo;
  mo.num_threads = 1;
  mo.abs_gap = 2.0;
  const milp::MipResult unseeded = solve_milp(rm.model, mo);

  core::LocalSearchOptions ls_opts;
  ls_opts.seed = 17;
  ls_opts.max_iters = 6000;
  ls_opts.restarts = 6;
  const core::LocalSearchResult lsr = core::local_search_remap(spec, ls_opts);
  const std::vector<double> seed =
      lsr.feasible ? rm.encode(lsr.floorplan) : std::vector<double>{};
  milp::MipOptions seeded_opts = mo;
  if (!seed.empty()) seeded_opts.initial_incumbent = &seed;
  const milp::MipResult seeded = solve_milp(rm.model, seeded_opts);

  obs::JsonWriter w;
  w.begin_object()
      .field("case", "ls_seeding")
      .field("ls_feasible", lsr.feasible)
      .field("incumbent_seeded", seeded.incumbent_seeded)
      .field("nodes_unseeded", unseeded.nodes)
      .field("nodes_seeded", seeded.nodes)
      .field("obj_unseeded", unseeded.obj)
      .field("obj_seeded", seeded.obj)
      .field("wall_seconds", now_seconds() - t0)
      .field("threads", 1L);
  append_meta_fields(w);
  w.end_object();
  std::printf("CGRAF_BENCH_JSON %s\n", w.str().c_str());
}

}  // namespace

int main() {
  // Quick deterministic subset: the 4x4-fabric specs of every band with up
  // to 8 contexts (bench-sized exact solves; the slow test covers all 27).
  int taken = 0;
  for (const workloads::BenchmarkSpec& spec : workloads::table1_specs()) {
    if (spec.fabric_dim != 4 || spec.contexts > 8) continue;
    if (++taken > 4) break;
    run_gap_case(spec);
  }
  run_seeding_case();
  return 0;
}
