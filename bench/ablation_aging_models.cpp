// Ablation: does stress levelling help only NBTI, or every activity-driven
// aging mechanism? (The paper evaluates NBTI because it dominates; Section
// I lists HCI/EM/TDDB as the other accelerated mechanisms.)
//
// For a handful of suite benchmarks this bench re-maps once and reports
// the per-mechanism fabric MTTF gains plus the competing-risk gain.
#include <cstdio>

#include "aging/mechanisms.h"
#include "core/report.h"
#include "util/ascii.h"

using namespace cgraf;

int main() {
  std::printf("== Ablation: aging-mechanism sensitivity ==\n\n");
  AsciiTable table({"bench", "config", "NBTI x", "HCI x", "EM x",
                    "combined x", "limiter before", "limiter after"});
  const auto specs = workloads::table1_specs(false);
  for (const int idx : {1, 4, 12, 13, 21}) {
    const auto& spec = specs[static_cast<std::size_t>(idx)];
    const auto bench = workloads::generate_benchmark(spec);
    core::RemapOptions opts;
    const auto remap = aging_aware_remap(bench.design, bench.baseline, opts);

    aging::CombinedAgingParams params;
    const auto before =
        compute_mttf_combined(bench.design, bench.baseline, params);
    const auto after =
        compute_mttf_combined(bench.design, remap.floorplan, params);

    auto gain = [](double b, double a) { return a / b; };
    table.add_row(
        {spec.name,
         "C" + std::to_string(spec.contexts) + "F" +
             std::to_string(spec.fabric_dim),
         fmt_double(gain(before.nbti_mttf_seconds, after.nbti_mttf_seconds),
                    2),
         fmt_double(gain(before.hci_mttf_seconds, after.hci_mttf_seconds), 2),
         fmt_double(gain(before.em_mttf_seconds, after.em_mttf_seconds), 2),
         fmt_double(gain(before.mttf_seconds, after.mttf_seconds), 2),
         to_string(before.limiting_mechanism),
         to_string(after.limiting_mechanism)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.render().c_str());
  std::printf("expectation: every column > 1 on improved benchmarks — the\n"
              "balancing is mechanism-agnostic because all three models are\n"
              "monotone in per-PE activity (and temperature follows it).\n");
  return 0;
}
