// cgraf_bench — perf-regression harness over the bench binaries.
//
//   cgraf_bench run [--preset quick|full] [--label L] [--out FILE]
//                   [--bin-dir DIR]
//   cgraf_bench compare BASELINE.json CANDIDATE.json
//                   [--wall-ratio X] [--count-ratio X] [--min-wall-ms X]
//
// `run` executes the declared suite entries (pinned seeds and thread
// counts; the quick preset is a small deterministic subset for CI
// perf-smoke), scrapes their `CGRAF_BENCH_JSON {...}` stdout lines and
// writes one schema-versioned BENCH_<label>.json document stamped with the
// git SHA, compiler and host thread count.
//
// `compare` diffs two such documents with per-metric noise thresholds
// (obs/bench_compare.h) and exits nonzero when the candidate regresses —
// the CI gate.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/bench_compare.h"
#include "obs/build_info.h"
#include "obs/json_reader.h"
#include "obs/json_writer.h"
#include "util/clock.h"

namespace {

using namespace cgraf;

int usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: cgraf_bench run [--preset quick|full] [--label L]"
               " [--out FILE] [--bin-dir DIR]\n"
               "       cgraf_bench compare BASELINE.json CANDIDATE.json\n"
               "               [--wall-ratio X] [--count-ratio X]"
               " [--min-wall-ms X]\n"
               "run     executes the bench suite and writes BENCH_<L>.json\n"
               "compare exits 1 when the candidate regresses vs baseline\n");
  return code;
}

struct SuiteEntry {
  const char* label;   // also the key of the harness wall-time result row
  const char* binary;  // executable name, resolved relative to --bin-dir
  const char* args;    // already shell-safe (literal flags, no user input)
  bool in_quick;       // part of the quick (CI perf-smoke) preset
};

// Declared suite. Seeds live inside the bench bodies; thread counts are
// pinned by the benchmark Args, so reruns on the same host are
// deterministic in their work counters.
const SuiteEntry kSuite[] = {
    {"micro_solver_quick", "micro_solver",
     "--benchmark_filter='BM_LpAssignment/24|BM_MilpAssignment/16/1|"
     "BM_LpRhsRampProbes/48|BM_LpChildResolve/48'"
     " --benchmark_report_aggregates_only=false",
     /*in_quick=*/true},
    {"micro_solver_full", "micro_solver", "", /*in_quick=*/false},
    {"scaling_small", "scaling_ilp_vs_milp", "2 2", /*in_quick=*/false},
    {"ls_vs_exact", "ls_vs_exact", "", /*in_quick=*/true},
};

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'') out += "'\\''";
    else out += c;
  }
  out += "'";
  return out;
}

// Runs one suite entry, appending every valid CGRAF_BENCH_JSON payload to
// `results`. Returns false when the child fails to launch or exits
// nonzero (its scraped lines are still kept).
bool run_entry(const std::string& bin_dir, const SuiteEntry& entry,
               std::vector<std::string>* results) {
  std::string cmd = shell_quote(bin_dir + "/" + entry.binary);
  if (entry.args[0] != '\0') cmd += std::string(" ") + entry.args;
  std::fprintf(stderr, "[cgraf_bench] %s\n", cmd.c_str());
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    std::fprintf(stderr, "cgraf_bench: failed to launch %s\n",
                 entry.binary);
    return false;
  }
  constexpr const char kPrefix[] = "CGRAF_BENCH_JSON ";
  constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
  std::string line;
  char buf[4096];
  long scraped = 0, malformed = 0;
  auto consume_line = [&]() {
    if (line.compare(0, kPrefixLen, kPrefix) == 0) {
      const std::string payload = line.substr(kPrefixLen);
      obs::JsonValue v;
      std::string err;
      if (obs::parse_json(payload, &v, &err) && v.is_object()) {
        results->push_back(payload);
        ++scraped;
      } else {
        ++malformed;
      }
    }
    line.clear();
  };
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    line += buf;
    if (!line.empty() && line.back() == '\n') {
      line.pop_back();
      consume_line();
    }
  }
  if (!line.empty()) consume_line();
  const int status = pclose(pipe);
  if (malformed > 0) {
    std::fprintf(stderr,
                 "cgraf_bench: %s emitted %ld malformed bench line(s)\n",
                 entry.binary, malformed);
  }
  std::fprintf(stderr, "[cgraf_bench] %s: %ld result line(s)\n", entry.label,
               scraped);
  if (status != 0) {
    std::fprintf(stderr, "cgraf_bench: %s exited with status %d\n",
                 entry.binary, status);
    return false;
  }
  return true;
}

// Default --bin-dir: wherever this harness itself lives (the bench
// binaries are built as its siblings).
std::string default_bin_dir(const char* argv0) {
  const std::string self(argv0);
  const std::size_t slash = self.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : self.substr(0, slash);
}

int cmd_run(int argc, char** argv) {
  std::string preset = "quick";
  std::string label = "local";
  std::string out_path;
  std::string bin_dir = default_bin_dir(argv[0]);
  for (int i = 2; i < argc; ++i) {
    const std::string key = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (key == "--preset" && (v = value()) != nullptr) preset = v;
    else if (key == "--label" && (v = value()) != nullptr) label = v;
    else if (key == "--out" && (v = value()) != nullptr) out_path = v;
    else if (key == "--bin-dir" && (v = value()) != nullptr) bin_dir = v;
    else if (key == "--help") return usage(0);
    else {
      std::fprintf(stderr, "cgraf_bench: bad run option '%s'\n", key.c_str());
      return usage(2);
    }
  }
  if (preset != "quick" && preset != "full") {
    std::fprintf(stderr, "cgraf_bench: unknown preset '%s' (quick|full)\n",
                 preset.c_str());
    return 2;
  }
  if (out_path.empty()) out_path = "BENCH_" + label + ".json";

  std::vector<std::string> results;
  bool all_ok = true;
  for (const SuiteEntry& entry : kSuite) {
    if (preset == "quick" && !entry.in_quick) continue;
    const double t0 = now_seconds();
    const bool ok = run_entry(bin_dir, entry, &results);
    const double seconds = now_seconds() - t0;
    all_ok = all_ok && ok;
    // The harness's own wall clock per entry: a coarse, always-present
    // wall metric even for entries whose lines carry only counters.
    obs::JsonWriter w;
    w.begin_object()
        .field("case", std::string("suite/") + entry.label)
        .field("ok", ok)
        .field("wall_seconds", seconds)
        .end_object();
    results.push_back(w.str());
  }

  obs::JsonWriter doc;
  doc.begin_object()
      .field("schema_version", obs::kBenchJsonSchemaVersion)
      .field("label", label)
      .field("preset", preset);
  obs::append_build_info_fields(doc);
  doc.key("results").begin_array();
  for (const std::string& r : results) doc.raw(r);
  doc.end_array();
  doc.end_object();

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cgraf_bench: cannot write %s\n", out_path.c_str());
    return 1;
  }
  const std::string text = doc.str() + "\n";
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "[cgraf_bench] wrote %s (%zu result(s))\n",
               out_path.c_str(), results.size());
  return all_ok ? 0 : 1;
}

bool read_file_text(const std::string& path, std::string* out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

int cmd_compare(int argc, char** argv) {
  std::vector<std::string> paths;
  obs::BenchThresholds thresholds;
  for (int i = 2; i < argc; ++i) {
    const std::string key = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    auto strict = [&](const char* s, double* out) {
      char* end = nullptr;
      *out = std::strtod(s, &end);
      if (end == s || *end != '\0') {
        std::fprintf(stderr, "cgraf_bench: bad numeric value '%s' for %s\n",
                     s, key.c_str());
        return false;
      }
      return true;
    };
    if (key == "--wall-ratio" && (v = value()) != nullptr) {
      if (!strict(v, &thresholds.wall_ratio)) return usage(2);
    } else if (key == "--count-ratio" && (v = value()) != nullptr) {
      if (!strict(v, &thresholds.count_ratio)) return usage(2);
    } else if (key == "--min-wall-ms" && (v = value()) != nullptr) {
      if (!strict(v, &thresholds.min_wall_s)) return usage(2);
      thresholds.min_wall_s *= 1e-3;
    } else if (key == "--help") {
      return usage(0);
    } else if (key.rfind("--", 0) == 0) {
      std::fprintf(stderr, "cgraf_bench: bad compare option '%s'\n",
                   key.c_str());
      return usage(2);
    } else {
      paths.push_back(key);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "cgraf_bench: compare needs exactly a baseline and a"
                 " candidate document\n");
    return usage(2);
  }
  std::string old_doc, new_doc;
  if (!read_file_text(paths[0], &old_doc)) {
    std::fprintf(stderr, "cgraf_bench: cannot read %s\n", paths[0].c_str());
    return 2;
  }
  if (!read_file_text(paths[1], &new_doc)) {
    std::fprintf(stderr, "cgraf_bench: cannot read %s\n", paths[1].c_str());
    return 2;
  }
  const obs::BenchComparison cmp =
      obs::compare_bench_docs(old_doc, new_doc, thresholds);
  std::printf("%s", cmp.to_text().c_str());
  if (!cmp.ok) return 2;
  return cmp.has_regression() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(2);
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") return usage(0);
  if (cmd == "run") return cmd_run(argc, argv);
  if (cmd == "compare") return cmd_compare(argc, argv);
  std::fprintf(stderr, "cgraf_bench: unknown command '%s'\n", cmd.c_str());
  return usage(2);
}
