// Reproduces the paper's Section V.A scaling claim: the monolithic one-shot
// ILP over M x N x C binaries stops scaling (the authors aborted CPLEX
// after 5 days on large benchmarks), while the two-step relaxation (LP ->
// pre-map -> residual integer search) solves the same instances quickly.
//
// Both strategies get the same Step-2 model (frozen critical paths +
// monitored-path budgets) at the same st_target; the one-shot ILP runs
// under a wall-clock budget per instance and reports a timeout where the
// paper reports "no solution within 5 days".
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "cgrra/stress.h"
#include "core/report.h"
#include "core/st_target.h"
#include "obs/bench_compare.h"
#include "obs/build_info.h"
#include "obs/json_writer.h"
#include "obs/trace.h"
#include "util/ascii.h"
#include "util/clock.h"

using namespace cgraf;

namespace {

struct Row {
  std::string name;
  int vars = 0;
  milp::SolveStatus ilp_status = milp::SolveStatus::kNumericalError;
  double ilp_seconds = 0.0;
  long ilp_nodes = 0;
  milp::SolveStatus dive_status = milp::SolveStatus::kNumericalError;
  double dive_seconds = 0.0;
  double ilp_obj = 0.0;
  core::TwoStepStats ilp_stats;
  core::TwoStepStats dive_stats;
  // The same two-step dive run twice — LP algorithm forced to warm primal
  // vs. auto (dual on warm re-solves) — with the independent certifier on.
  // Every individual LP agrees bit-for-bit on status and objective across
  // algorithms (the engine's identity contract); end to end the decoded
  // plans also match except when a degenerate LP optimum lets the dive fix
  // a different co-optimal vertex — the same documented path-dependence as
  // warm-vs-cold ILP probes (DESIGN.md §7). Both plans are always
  // certified; the iteration/wall gap is the dual simplex payoff.
  milp::SolveStatus dive_primal_status = milp::SolveStatus::kNumericalError;
  double dive_primal_seconds = 0.0;
  core::TwoStepStats dive_primal_stats;
  double dive_max_stress = 0.0;
  double dive_primal_max_stress = 0.0;
  bool dive_objectives_match = false;
  bool dive_certified = false;
  // Step-1 warm vs cold probe comparison (same binary search twice).
  int st_probes = 0;
  int st_warm_hits = 0;
  double st_warm_seconds = 0.0;
  double st_cold_seconds = 0.0;
  double st_target_warm = 0.0;
  double st_target_cold = 0.0;
  std::vector<core::StProbe> probe_log;  // of the warm run
};

// Percentile over per-probe wall times (nearest-rank on the sorted log).
double probe_pct(const std::vector<core::StProbe>& log, double q) {
  if (log.empty()) return 0.0;
  std::vector<double> s;
  s.reserve(log.size());
  for (const auto& p : log) s.push_back(p.seconds);
  std::sort(s.begin(), s.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(s.size() - 1) + 0.5);
  return s[std::min(idx, s.size() - 1)];
}

Row run_one(const workloads::BenchmarkSpec& spec, double ilp_budget_s,
            int threads) {
  const auto bench = workloads::generate_benchmark(spec);
  const Design& design = bench.design;
  const timing::CombGraph graph(design);
  const timing::StaResult sta = run_sta(graph, bench.baseline);

  // Shared Step-2 model pieces (Freeze mode, default margins).
  std::vector<char> frozen(static_cast<std::size_t>(design.num_ops()), 0);
  for (int c = 0; c < design.num_contexts; ++c) {
    for (const auto& p : timing::critical_paths(graph, bench.baseline, c, 8))
      for (const int op : p.ops) frozen[static_cast<std::size_t>(op)] = 1;
  }
  const auto monitored = timing::monitored_paths(graph, bench.baseline);
  const auto candidates = core::compute_candidates(
      design, bench.baseline, frozen, monitored, sta.cpd_ns);

  // Run Step 1's binary search twice — incremental warm-started probes vs
  // the legacy cold rebuild per probe — to measure what the probe sessions
  // buy. ILP-confirmed probes: the pure-LP search short-circuits at ST_low
  // (a fractional assignment balances perfectly), so the integer-confirmed
  // search is the one that actually bisects.
  core::StTargetOptions st_opts;
  st_opts.confirm_with_ilp = true;
  st_opts.warm_probes = false;
  const double t_cold = now_seconds();
  const core::StTargetResult st_cold =
      core::find_st_target(design, bench.baseline, st_opts);
  const double cold_seconds = now_seconds() - t_cold;
  st_opts.warm_probes = true;
  const double t_warm = now_seconds();
  const core::StTargetResult st =
      core::find_st_target(design, bench.baseline, st_opts);
  const double warm_seconds = now_seconds() - t_warm;
  if (st.st_target != st_cold.st_target) {
    // Expected occasionally with ILP confirmation: the rounding dive is
    // path-dependent, so a warm-started probe can round a degenerate LP
    // optimum differently and flip a probe verdict. Both searches certify
    // every accepted probe; pure-LP probes (the default) are identical.
    std::fprintf(stderr,
                 "note: warm/cold ILP-confirmed st_target differ on %s "
                 "(%.4f vs %.4f)\n",
                 spec.name.c_str(), st.st_target, st_cold.st_target);
  }
  // A mildly relaxed target so both solvers search a feasible region.
  const double target = st.st_target + 0.35 * (st.st_up - st.st_target);

  core::RemapModelSpec mspec;
  mspec.design = &design;
  mspec.base = &bench.baseline;
  mspec.frozen = frozen;
  mspec.candidates = candidates;
  mspec.st_target = target;
  mspec.monitored = &monitored;
  mspec.cpd_ns = sta.cpd_ns;
  const core::RemapModel rm = build_remap_model(mspec);

  Row row;
  row.name = spec.name + " (C" + std::to_string(spec.contexts) + "F" +
             std::to_string(spec.fabric_dim) + ", " +
             std::to_string(bench.total_ops) + " ops)";
  row.vars = rm.num_binary_vars;
  row.st_probes = st.probes;
  row.st_warm_hits = st.warm_hits;
  row.st_warm_seconds = warm_seconds;
  row.st_cold_seconds = cold_seconds;
  row.st_target_warm = st.st_target;
  row.st_target_cold = st_cold.st_target;
  row.probe_log = st.probe_log;

  {  // One-shot ILP under a wall-clock budget.
    core::TwoStepOptions opts;
    opts.strategy = core::RoundingStrategy::kNone;
    opts.mip.stop_at_first_incumbent = true;
    opts.mip.time_limit_s = ilp_budget_s;
    opts.mip.max_nodes = 1000000000;
    opts.mip.num_threads = threads;
    const auto r = solve_two_step(rm, opts);
    row.ilp_status = r.status;
    row.ilp_seconds = r.stats.mip_seconds;
    row.ilp_nodes = r.stats.mip_nodes;
    row.ilp_stats = r.stats;
    if (!r.floorplan.op_to_pe.empty())
      row.ilp_obj = compute_stress(design, r.floorplan).max_accumulated();
  }
  {  // Two-step relaxation (iterated dive), LP algorithm forced to primal.
    core::TwoStepOptions opts;
    opts.mip.num_threads = threads;
    opts.lp.algorithm = milp::LpAlgorithm::kPrimal;
    opts.mip.lp.algorithm = milp::LpAlgorithm::kPrimal;
    opts.verify.enabled = true;
    const auto r = solve_two_step(rm, opts);
    row.dive_primal_status = r.status;
    row.dive_primal_seconds = r.stats.lp_seconds + r.stats.mip_seconds;
    row.dive_primal_stats = r.stats;
    if (!r.floorplan.op_to_pe.empty())
      row.dive_primal_max_stress =
          compute_stress(design, r.floorplan).max_accumulated();
  }
  {  // Two-step relaxation (iterated dive), default auto (dual on warm).
    core::TwoStepOptions opts;
    opts.mip.num_threads = threads;
    opts.verify.enabled = true;
    const auto r = solve_two_step(rm, opts);
    row.dive_status = r.status;
    row.dive_seconds = r.stats.lp_seconds + r.stats.mip_seconds;
    row.dive_stats = r.stats;
    if (!r.floorplan.op_to_pe.empty())
      row.dive_max_stress =
          compute_stress(design, r.floorplan).max_accumulated();
  }
  row.dive_objectives_match =
      row.dive_status == row.dive_primal_status &&
      row.dive_max_stress == row.dive_primal_max_stress;
  row.dive_certified = true;  // opts.verify.enabled held for both dives
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  // CGRAF_TRACE=<path>: record a Chrome trace of the whole sweep; each
  // CGRAF_BENCH_JSON line then carries the trace path.
  // Single-threaded main() before any worker starts; no setenv anywhere.
  const char* trace_path = std::getenv("CGRAF_TRACE");  // NOLINT(concurrency-mt-unsafe)
  if (trace_path != nullptr && *trace_path == '\0') trace_path = nullptr;
  if (trace_path != nullptr) obs::Tracer::global().enable();
  double budget = 60.0;
  if (argc > 1) {
    char* end = nullptr;
    budget = std::strtod(argv[1], &end);
    if (end == argv[1] || *end != '\0' || !(budget > 0)) {
      std::fprintf(stderr, "bad wall-clock budget '%s'\n", argv[1]);
      return 2;
    }
  }
  int threads = 0;  // 0 = hardware_concurrency
  if (argc > 2) {
    char* end = nullptr;
    const long t = std::strtol(argv[2], &end, 10);
    if (end == argv[2] || *end != '\0' || t < 0 || t > 4096) {
      std::fprintf(stderr, "bad thread count '%s'\n", argv[2]);
      return 2;
    }
    threads = static_cast<int>(t);
  }
  const int threads_eff =
      threads > 0 ? threads
                  : std::max(1u, std::thread::hardware_concurrency());
  std::printf("== Section V.A: one-shot ILP vs two-step MILP ==\n");
  std::printf("(one-shot ILP wall-clock budget: %.0fs per instance; the "
              "paper's was 5 days; B&B threads: %d)\n\n",
              budget, threads_eff);

  std::vector<workloads::BenchmarkSpec> sweep;
  for (const auto& spec : workloads::table1_specs(false)) {
    if (spec.band == workloads::UsageBand::kMedium) sweep.push_back(spec);
  }

  AsciiTable table({"instance", "binaries", "one-shot ILP", "ILP nodes",
                    "two-step", "speedup"});
  std::vector<Row> rows;
  for (const auto& spec : sweep) {
    const Row row = run_one(spec, budget, threads);
    rows.push_back(row);
    const bool ilp_solved = row.ilp_status == milp::SolveStatus::kOptimal ||
                            row.ilp_status == milp::SolveStatus::kFeasible;
    table.add_row(
        {row.name, std::to_string(row.vars),
         ilp_solved ? fmt_double(row.ilp_seconds, 1) + "s"
                    : std::string("TIMEOUT (") +
                          milp::to_string(row.ilp_status) + ")",
         std::to_string(row.ilp_nodes), fmt_double(row.dive_seconds, 1) + "s",
         ilp_solved ? fmt_double(row.ilp_seconds /
                                     std::max(1e-3, row.dive_seconds),
                                 1) + "x"
                    : std::string(">") +
                          fmt_double(budget / std::max(1e-3,
                                                       row.dive_seconds),
                                     0) + "x"});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.render().c_str());

  std::printf("solver stages, largest instance (%s):\n%s\n",
              rows.back().name.c_str(),
              core::format_solver_stats(rows.back().ilp_stats).c_str());

  {  // Two-step dive: dual-on-warm (auto) vs forced warm primal.
    double auto_s = 0.0, primal_s = 0.0;
    long auto_it = 0, primal_it = 0;
    long dual_it = 0, flips = 0;
    int matched = 0;
    for (const Row& row : rows) {
      auto_s += row.dive_seconds;
      primal_s += row.dive_primal_seconds;
      auto_it += row.dive_stats.lp_iterations +
                 row.dive_stats.mip_lp_iterations;
      primal_it += row.dive_primal_stats.lp_iterations +
                   row.dive_primal_stats.mip_lp_iterations;
      dual_it += row.dive_stats.lp_stage.dual_iterations;
      flips += row.dive_stats.lp_stage.bound_flips;
      matched += row.dive_objectives_match ? 1 : 0;
    }
    std::printf(
        "two-step LP algorithm: auto %.2fs / %ld LP iterations "
        "(%ld dual, %ld bound flips) vs primal %.2fs / %ld iterations "
        "(%.2fx wall, %.2fx iterations); certified plans bit-identical on "
        "%d/%zu instances (the rest differ among co-optimal vertices)\n\n",
        auto_s, auto_it, dual_it, flips, primal_s, primal_it,
        primal_s / std::max(1e-9, auto_s),
        static_cast<double>(primal_it) /
            std::max(1.0, static_cast<double>(auto_it)),
        matched, rows.size());
  }

  {  // Step-1 probe sessions: warm-started patches vs cold rebuilds.
    double warm_total = 0.0, cold_total = 0.0;
    int probes = 0, hits = 0;
    for (const Row& row : rows) {
      warm_total += row.st_warm_seconds;
      cold_total += row.st_cold_seconds;
      probes += row.st_probes;
      hits += row.st_warm_hits;
    }
    std::printf(
        "step-1 probe sessions: %d probes, %d warm hits; "
        "warm %.2fs vs cold %.2fs (%.2fx)\n\n",
        probes, hits, warm_total, cold_total,
        cold_total / std::max(1e-9, warm_total));
  }

  if (trace_path != nullptr) {
    obs::Tracer::global().disable();
    std::string error;
    if (!obs::Tracer::global().write_json(trace_path, &error)) {
      std::fprintf(stderr, "failed to write trace: %s\n", error.c_str());
      trace_path = nullptr;
    }
  }

  // One machine-readable line per instance for the BENCH_*.json trajectory.
  for (const Row& row : rows) {
    obs::JsonWriter w;
    w.begin_object()
        .field("case", "scaling_ilp_vs_milp")
        .field("instance", row.name)
        .field("binaries", row.vars)
        .field("threads", threads_eff)
        .field("ilp_status", milp::to_string(row.ilp_status))
        .field("ilp_wall_seconds", row.ilp_seconds)
        .field("ilp_nodes", row.ilp_nodes)
        .field("ilp_max_stress", row.ilp_obj)
        .field("dive_status", milp::to_string(row.dive_status))
        .field("dive_wall_seconds", row.dive_seconds)
        .field("dive_primal_status", milp::to_string(row.dive_primal_status))
        .field("dive_primal_wall_seconds", row.dive_primal_seconds)
        .field("dive_max_stress", row.dive_max_stress)
        .field("dive_primal_max_stress", row.dive_primal_max_stress)
        .field("dive_objectives_match", row.dive_objectives_match)
        .field("dive_certified", row.dive_certified)
        .field("st_probes", row.st_probes)
        .field("st_warm_hits", row.st_warm_hits)
        .field("st_warm_seconds", row.st_warm_seconds)
        .field("st_cold_seconds", row.st_cold_seconds)
        .field("st_target_warm", row.st_target_warm)
        .field("st_target_cold", row.st_target_cold)
        .field("st_probe_p50_s", probe_pct(row.probe_log, 0.50))
        .field("st_probe_p90_s", probe_pct(row.probe_log, 0.90))
        .field("st_probe_max_s", probe_pct(row.probe_log, 1.0))
        .raw_field("ilp", "{" + core::solver_stats_json(row.ilp_stats) + "}")
        .raw_field("dive",
                   "{" + core::solver_stats_json(row.dive_stats) + "}")
        .raw_field("dive_primal",
                   "{" + core::solver_stats_json(row.dive_primal_stats) +
                       "}");
    w.field("schema_version", obs::kBenchJsonSchemaVersion);
    obs::append_build_info_fields(w);
    if (trace_path != nullptr) w.field("trace", trace_path);
    w.end_object();
    std::printf("CGRAF_BENCH_JSON %s\n", w.str().c_str());
  }
  return 0;
}
