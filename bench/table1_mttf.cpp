// Reproduces Table I: MTTF increase (x) of the aging-aware floorplan over
// the aging-unaware baseline for the 27-benchmark suite, with the Freeze
// and Rotate variants and the per-usage-band averages.
//
// Usage: table1_mttf [--paper-scale] [--band low|medium|high] [--max-dim N]
//   --paper-scale  use the paper's fabrics {4x4, 8x8, 16x16} (slow; see
//                  DESIGN.md §5) instead of the default {4x4, 6x6, 8x8}.
//   --max-dim N    skip benchmarks with fabric dimension > N.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/report.h"

int main(int argc, char** argv) {
  bool paper_scale = false;
  int max_dim = 1 << 30;
  std::string band_filter;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper-scale") == 0) paper_scale = true;
    else if (std::strcmp(argv[i], "--band") == 0 && i + 1 < argc)
      band_filter = argv[++i];
    else if (std::strcmp(argv[i], "--max-dim") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v <= 0 || v > (1L << 30)) {
        std::fprintf(stderr, "bad --max-dim '%s'\n", argv[i]);
        return 2;
      }
      max_dim = static_cast<int>(v);
    }
  }

  std::printf("== Table I: MTTF increase for the B1-B27 suite ==\n");
  std::printf("(fabrics %s; MTTF metric: first-PE-failure under the NBTI "
              "model, Section III)\n\n",
              paper_scale ? "4x4/8x8/16x16 (paper scale)"
                          : "4x4/6x6/8x8 (default scale, DESIGN.md §5)");

  std::vector<cgraf::core::BenchmarkRun> runs;
  for (const auto& spec : cgraf::workloads::table1_specs(paper_scale)) {
    if (spec.fabric_dim > max_dim) continue;
    if (!band_filter.empty() &&
        band_filter != cgraf::workloads::to_string(spec.band))
      continue;
    const auto bench = cgraf::workloads::generate_benchmark(spec);
    cgraf::core::RemapOptions opts;
    const auto run = cgraf::core::run_benchmark(bench, opts);
    std::printf("  %s: ops=%d freeze=%.2fx rotate=%.2fx (%.1fs + %.1fs)\n",
                spec.name.c_str(), run.total_ops, run.freeze.mttf_gain,
                run.rotate.mttf_gain, run.freeze.seconds,
                run.rotate.seconds);
    std::fflush(stdout);
    runs.push_back(run);
  }

  std::printf("\n%s\n", cgraf::core::format_table1(runs).c_str());
  return 0;
}
