// Reproduces Fig. 5: MTTF increase (x) achieved by the complete (Rotate)
// aging-aware re-mapping, grouped by CGRRA configuration "C<contexts>
// F<fabric-dim>", one series per usage band. The paper's shape claims:
// gains fall as usage rises, and grow with the context count.
#include <cstdio>
#include <cstring>

#include "core/report.h"

int main(int argc, char** argv) {
  bool paper_scale = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--paper-scale") == 0) paper_scale = true;

  std::printf("== Fig. 5: MTTF increase (x) by configuration ==\n\n");
  std::vector<cgraf::core::BenchmarkRun> runs;
  for (const auto& spec : cgraf::workloads::table1_specs(paper_scale)) {
    const auto bench = cgraf::workloads::generate_benchmark(spec);
    cgraf::core::BenchmarkRun run;
    run.spec = bench.spec;
    run.total_ops = bench.total_ops;
    cgraf::core::RemapOptions opts;
    opts.mode = cgraf::core::RemapMode::kRotate;
    opts.seed = spec.seed ^ 0x0dd5ULL;
    run.rotate = aging_aware_remap(bench.design, bench.baseline, opts);
    run.freeze = run.rotate;  // format_fig5 only reads the rotate field
    std::printf("  %s (C%dF%d %s): %.2fx\n", spec.name.c_str(), spec.contexts,
                spec.fabric_dim, to_string(spec.band), run.rotate.mttf_gain);
    std::fflush(stdout);
    runs.push_back(std::move(run));
  }

  std::printf("\n%s\n", cgraf::core::format_fig5(runs).c_str());

  // Shape checks the paper's narrative makes (reported, not asserted).
  std::printf("shape notes: gains should fall from the 'low' to the 'high'"
              " column,\nand rise from C4 rows to C16 rows within a fabric"
              " size.\n");
  return 0;
}
